package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the dataflow layer beneath the parallel-contract
// analyzers (sharedslot, mergeorder, rngshare, and the goroutine half of
// floatsum): a goroutine-context tracker plus the closure-capture and
// slot-index queries those analyzers share. Everything here is
// function-local or package-local — no cross-package summaries — which
// keeps the pass cheap and its findings explainable at the flagged line.
//
// A goroutine context is a body of code that may execute on a spawned
// goroutine:
//
//   - the function literal of a `go func(){...}()` statement;
//   - a named function or method launched directly by a go statement
//     (`go e.worker(w, c)` — the netsim domain pool's shape);
//   - a worker-pool task closure: a function literal that flows into a
//     parameter some callee executes on a goroutine (`runTasks`'s tasks
//     slice — the analysis pipeline's shape). The flow is tracked
//     function-locally: literals appearing in the argument expression
//     itself, plus literals stored — by assignment or append, possibly
//     wrapped in composite literals — into a local variable that is
//     later passed at such a parameter position.
//
// "Executed on a goroutine" is itself inferred per package: parameter i
// of F is goroutine-executed when F's body calls a value rooted at that
// parameter inside goroutine-reachable code (tasks[i].fn() inside
// runTasks's worker literal), or passes the parameter on to another
// function's goroutine-executed parameter. The set is closed by
// fixed-point iteration over the package, so wrappers around a pool
// runner inherit its contract.
type goContext struct {
	lit  *ast.FuncLit  // closure contexts
	decl *ast.FuncDecl // named contexts launched by a go statement

	// site is where the goroutine (or the closure that will run on one)
	// is created. loop is the innermost for/range statement enclosing
	// site within the same function: its per-iteration variables
	// (including Go ≥1.22 loop variables) are fresh for every instance
	// of the context.
	site ast.Node
	loop ast.Node

	// multi reports that more than one instance of the context may run
	// concurrently: the creation site sits inside a loop, or — for named
	// contexts — the function is launched from more than one go
	// statement.
	multi bool

	// recvShared is the receiver object of a named context whose launch
	// sites pass a receiver that is not per-instance fresh: every
	// goroutine shares the same receiver value, so it does not count as
	// context-owned state.
	recvShared types.Object

	// kind names the context in diagnostics: "goroutine" for go
	// statements, "task closure" for pool-fed literals.
	kind string
}

// body returns the block that runs on the goroutine.
func (c *goContext) body() *ast.BlockStmt {
	if c.lit != nil {
		return c.lit.Body
	}
	return c.decl.Body
}

// scope is the node whose source range bounds the context's own
// declarations (parameters included).
func (c *goContext) scope() ast.Node {
	if c.lit != nil {
		return c.lit
	}
	return c.decl
}

// owns reports whether obj is private to each instance of the context:
// a parameter or a local of the context body. A shared receiver is
// explicitly not owned.
func (c *goContext) owns(obj types.Object) bool {
	if obj == nil || !declaredWithin(obj, c.scope()) {
		return false
	}
	if c.recvShared != nil && obj == c.recvShared {
		return false
	}
	return true
}

// fresh reports whether obj names a distinct variable for every
// instance of the context: context-owned, or declared per-iteration
// inside the innermost loop enclosing the creation site (the
// `j, sh := j, sh` redeclarations and Go ≥1.22 loop variables).
func (c *goContext) fresh(obj types.Object) bool {
	if c.owns(obj) {
		return true
	}
	return obj != nil && c.lit != nil && c.loop != nil && declaredWithin(obj, c.loop)
}

// goCtxIndex is the package-wide context set, shared query surface for
// the contract analyzers.
type goCtxIndex struct {
	pass  *Pass
	ctxs  []*goContext
	byLit map[*ast.FuncLit]*goContext
}

// walkBody walks a context's body like inspectWithStack, but does not
// descend into nested function literals that are goroutine contexts of
// their own: their writes are judged against their own capture
// boundary. Plain nested literals (same-goroutine helpers) are walked
// through, with the enclosing context as the boundary.
func (idx *goCtxIndex) walkBody(c *goContext, fn func(n ast.Node, stack []ast.Node) bool) {
	inspectWithStack(c.body(), func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && idx.byLit[lit] != nil {
			return false
		}
		return fn(n, stack)
	})
}

// paramRef locates one parameter: its function and position.
type paramRef struct {
	fn  *types.Func
	idx int
}

// goroutineContexts builds the package's goroutine-context index.
func goroutineContexts(pass *Pass) *goCtxIndex {
	idx := &goCtxIndex{pass: pass, byLit: make(map[*ast.FuncLit]*goContext)}

	// Site survey: the innermost enclosing loop of every function
	// literal and go statement, and the package's declared functions
	// with their parameter objects.
	litLoop := make(map[*ast.FuncLit]ast.Node)
	goLoop := make(map[*ast.GoStmt]ast.Node)
	declOf := make(map[*types.Func]*ast.FuncDecl)
	params := make(map[types.Object]paramRef)
	var declOrder []*types.Func
	for _, file := range pass.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				litLoop[x] = innermostLoop(stack)
			case *ast.GoStmt:
				goLoop[x] = innermostLoop(stack)
			case *ast.FuncDecl:
				fn, ok := pass.Info.Defs[x.Name].(*types.Func)
				if !ok || x.Body == nil {
					return true
				}
				declOf[fn] = x
				declOrder = append(declOrder, fn)
				i := 0
				for _, field := range x.Type.Params.List {
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							params[obj] = paramRef{fn, i}
						}
						i++
					}
					if len(field.Names) == 0 {
						i++
					}
				}
			}
			return true
		})
	}

	// Fixed point: which parameters are goroutine-executed.
	goExec := make(map[*types.Func]map[int]bool)
	mark := func(fn *types.Func, i int, changed *bool) {
		if goExec[fn] == nil {
			goExec[fn] = make(map[int]bool)
		}
		if !goExec[fn][i] {
			goExec[fn][i] = true
			*changed = true
		}
	}
	for {
		changed := false
		for _, fn := range declOrder {
			decl := declOf[fn]
			// Goroutine-reachable regions within fn: go-statement
			// literals (and direct `go p()` calls), plus task literals
			// that flow into goroutine-executed parameters of callees.
			var regions []ast.Node
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					regions = append(regions, lit.Body)
				} else if pr, ok := params[baseObject(pass.Info, g.Call.Fun)]; ok && pr.fn == fn {
					mark(fn, pr.idx, &changed)
				}
				return true
			})
			for _, lit := range taskLits(pass, decl.Body, goExec) {
				regions = append(regions, lit.Body)
			}
			for _, region := range regions {
				ast.Inspect(region, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if pr, ok := params[baseObject(pass.Info, call.Fun)]; ok && pr.fn == fn {
						mark(fn, pr.idx, &changed)
					}
					return true
				})
			}
			// Propagation: fn passes its own parameter to a callee's
			// goroutine-executed position.
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.Info, call)
				positions := goExec[callee]
				if len(positions) == 0 {
					return true
				}
				for i, arg := range call.Args {
					if !positions[paramPos(callee, i)] {
						continue
					}
					if pr, ok := params[baseObject(pass.Info, arg)]; ok && pr.fn == fn {
						mark(fn, pr.idx, &changed)
					}
				}
				return true
			})
		}
		if !changed {
			break
		}
	}

	add := func(c *goContext) {
		if c.lit != nil {
			if idx.byLit[c.lit] != nil {
				return
			}
			idx.byLit[c.lit] = c
		}
		idx.ctxs = append(idx.ctxs, c)
	}

	// Contexts, pass 1: go statements.
	type launch struct {
		site *ast.GoStmt
		loop ast.Node
		recv ast.Expr
	}
	namedLaunches := make(map[*types.Func][]launch)
	var namedOrder []*types.Func
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				add(&goContext{
					lit: lit, site: g, loop: goLoop[g],
					multi: goLoop[g] != nil, kind: "goroutine",
				})
				return true
			}
			fn := calleeFunc(pass.Info, g.Call)
			if fn == nil || declOf[fn] == nil {
				return true
			}
			var recv ast.Expr
			if _, r := methodCall(pass.Info, g.Call); r != nil {
				recv = r
			}
			if _, seen := namedLaunches[fn]; !seen {
				namedOrder = append(namedOrder, fn)
			}
			namedLaunches[fn] = append(namedLaunches[fn], launch{g, goLoop[g], recv})
			return true
		})
	}

	// Contexts, pass 2: pool-fed task closures, per file so literals in
	// any function (tests included) are found.
	for _, file := range pass.Files {
		for _, lit := range taskLits(pass, file, goExec) {
			add(&goContext{
				lit: lit, site: lit, loop: litLoop[lit],
				multi: litLoop[lit] != nil, kind: "task closure",
			})
		}
	}

	// Contexts, pass 3: named functions launched by go statements.
	for _, fn := range namedOrder {
		launches := namedLaunches[fn]
		decl := declOf[fn]
		c := &goContext{decl: decl, site: launches[0].site, kind: "goroutine"}
		c.multi = len(launches) > 1
		recvFresh := true
		for _, l := range launches {
			if l.loop != nil {
				c.multi = true
			}
			if l.recv != nil && !exprVarsWithin(pass, l.recv, l.loop) {
				recvFresh = false
			}
		}
		if !recvFresh && decl.Recv != nil {
			for _, field := range decl.Recv.List {
				for _, name := range field.Names {
					c.recvShared = pass.Info.Defs[name]
				}
			}
		}
		add(c)
	}

	sort.Slice(idx.ctxs, func(i, j int) bool {
		return idx.ctxs[i].scope().Pos() < idx.ctxs[j].scope().Pos()
	})
	return idx
}

// innermostLoop returns the nearest for/range ancestor of the node on
// top of stack that lies within the same function, or nil.
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// paramPos maps a call argument position to the callee's parameter
// index, folding variadic tails onto the last parameter.
func paramPos(fn *types.Func, arg int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return arg
	}
	if n := sig.Params().Len(); sig.Variadic() && arg >= n-1 {
		return n - 1
	}
	return arg
}

// taskLits finds function literals under root that flow into
// goroutine-executed parameter positions: literals inside the argument
// expressions themselves, plus literals stored into a local variable
// that is passed at such a position anywhere in root.
func taskLits(pass *Pass, root ast.Node, goExec map[*types.Func]map[int]bool) []*ast.FuncLit {
	var lits []*ast.FuncLit
	flows := make(map[types.Object]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		positions := goExec[callee]
		if len(positions) == 0 {
			return true
		}
		for i, arg := range call.Args {
			if !positions[paramPos(callee, i)] {
				continue
			}
			lits = append(lits, topFuncLits(arg)...)
			if obj := baseObject(pass.Info, arg); obj != nil {
				flows[obj] = true
			}
		}
		return true
	})
	if len(flows) > 0 {
		ast.Inspect(root, func(n ast.Node) bool {
			var lhs []ast.Expr
			var rhs []ast.Expr
			switch s := n.(type) {
			case *ast.AssignStmt:
				lhs, rhs = s.Lhs, s.Rhs
			case *ast.ValueSpec:
				for _, name := range s.Names {
					lhs = append(lhs, name)
				}
				rhs = s.Values
			default:
				return true
			}
			into := false
			for _, l := range lhs {
				if flows[baseObject(pass.Info, l)] {
					into = true
				}
			}
			if !into {
				return true
			}
			for _, r := range rhs {
				lits = append(lits, topFuncLits(r)...)
			}
			return true
		})
	}
	return lits
}

// topFuncLits collects the function literals in e that are not nested
// inside another literal of e — the values that flow, not their inner
// helpers.
func topFuncLits(e ast.Expr) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}

// ---- capture- and slot-classification queries ----

// exprVarsFresh reports whether every variable referenced by e is fresh
// per instance of the context — the test for a task-derived slot index.
func exprVarsFresh(pass *Pass, c *goContext, e ast.Expr) bool {
	fresh := true
	sawVar := false
	skip := make(map[*ast.Ident]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			// A field or method selection: only the operand's variables
			// matter. Package-qualified references (pkg.V) stay checked.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); !ok || !isPkgName(pass.Info, id) {
				skip[x.Sel] = true
			}
		case *ast.Ident:
			if skip[x] {
				return true
			}
			if v, ok := pass.Info.ObjectOf(x).(*types.Var); ok {
				sawVar = true
				if !c.fresh(v) {
					fresh = false
				}
			}
		}
		return fresh
	})
	return fresh && sawVar
}

// exprVarsWithin reports whether every variable referenced by e is
// declared inside node; with a nil node it reports false unless e
// references no variables at all (then there is nothing fresh about it
// and the caller treats it as shared, so return false too for clarity).
func exprVarsWithin(pass *Pass, e ast.Expr, node ast.Node) bool {
	if node == nil {
		return false
	}
	ok := true
	skip := make(map[*ast.Ident]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if id, isIdent := ast.Unparen(x.X).(*ast.Ident); !isIdent || !isPkgName(pass.Info, id) {
				skip[x.Sel] = true
			}
		case *ast.Ident:
			if skip[x] {
				return true
			}
			if v, isVar := pass.Info.ObjectOf(x).(*types.Var); isVar && !declaredWithin(v, node) {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// A writeStep is one layer of an lvalue's access path, root outward:
// field selections, index operations (classified by how they
// distinguish slots), and pointer dereferences.
type stepKind int

const (
	stepField       stepKind = iota // .name
	stepIndexTask                   // [i] with every variable fresh per instance
	stepIndexConst                  // [k] with k a compile-time constant
	stepIndexShared                 // [k] with k shared across instances
	stepIndexMap                    // m[k] on a map — never a safe concurrent slot
	stepDeref                       // *p
)

type writeStep struct {
	kind stepKind
	name string // field name, or the constant's exact value
}

// lvalueSteps decomposes an lvalue into its root object and access
// path. A nil root means the expression does not ground in a plain
// identifier (function-call results and the like).
func lvalueSteps(pass *Pass, c *goContext, e ast.Expr) (types.Object, []writeStep) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.Info.ObjectOf(x), nil
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && isPkgName(pass.Info, id) {
			return pass.Info.ObjectOf(x.Sel), nil
		}
		root, steps := lvalueSteps(pass, c, x.X)
		return root, append(steps, writeStep{stepField, x.Sel.Name})
	case *ast.IndexExpr:
		root, steps := lvalueSteps(pass, c, x.X)
		step := writeStep{stepIndexShared, ""}
		if t := pass.Info.TypeOf(x.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return root, append(steps, writeStep{stepIndexMap, ""})
			}
		}
		if tv, ok := pass.Info.Types[x.Index]; ok && tv.Value != nil {
			step = writeStep{stepIndexConst, tv.Value.ExactString()}
		} else if exprVarsFresh(pass, c, x.Index) {
			step = writeStep{stepIndexTask, ""}
		}
		return root, append(steps, step)
	case *ast.StarExpr:
		root, steps := lvalueSteps(pass, c, x.X)
		return root, append(steps, writeStep{stepDeref, ""})
	}
	return nil, nil
}

func hasStep(steps []writeStep, kind stepKind) bool {
	for _, s := range steps {
		if s.kind == kind {
			return true
		}
	}
	return false
}

// hasIndexStep reports whether the path indexes at all (map included).
func hasIndexStep(steps []writeStep) bool {
	for _, s := range steps {
		switch s.kind {
		case stepIndexTask, stepIndexConst, stepIndexShared, stepIndexMap:
			return true
		}
	}
	return false
}

// stepsMayOverlap reports whether two access paths on the same root can
// reach the same memory. Distinct field names and distinct constant
// indices are provably disjoint; everything else is assumed to collide,
// and a path that is a prefix of another covers it.
func stepsMayOverlap(a, b []writeStep) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		x, y := a[i], b[i]
		if x.kind == stepField && y.kind == stepField && x.name != y.name {
			return false
		}
		if x.kind == stepIndexConst && y.kind == stepIndexConst && x.name != y.name {
			return false
		}
	}
	return true
}
