package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parsePass type-checks one source file (stdlib imports allowed) and
// returns a Pass suitable for driving the dataflow layers directly.
func parsePass(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: tpkg, Info: info}
}

// funcBody returns the body of the named top-level function.
func funcBody(t *testing.T, pass *Pass, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range pass.Files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// locksAtWrites returns, for each assignment to the variable `x` in
// body (source order), the mutex paths held there.
func locksAtWrites(pass *Pass, body *ast.BlockStmt) [][]string {
	held := mutexHeldAt(pass, body)
	var out [][]string
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); !ok || id.Name != "x" {
			return true
		}
		var paths []string
		for _, k := range held[as] {
			paths = append(paths, k.path)
		}
		out = append(out, paths)
		return true
	})
	return out
}

const cfgSrc = `package p

import "sync"

type guarded struct {
	sync.Mutex
	n int
}

func straightLine(mu *sync.Mutex) {
	x := 0
	mu.Lock()
	x = 1
	mu.Unlock()
	x = 2
	_ = x
}

func branchRelease(mu *sync.Mutex, cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
	}
	x := 3
	_ = x
}

func bothBranchesHold(mu *sync.Mutex, cond bool) {
	x := 0
	if cond {
		mu.Lock()
	} else {
		mu.Lock()
	}
	x = 1
	mu.Unlock()
	_ = x
}

func loopBody(mu *sync.Mutex, n int) {
	x := 0
	for i := 0; i < n; i++ {
		mu.Lock()
		x = i
		mu.Unlock()
	}
	_ = x
}

func earlyReturn(mu *sync.Mutex, cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	x := 1
	mu.Unlock()
	_ = x
}

func embedded(g *guarded) {
	g.Lock()
	x := g.n
	g.Unlock()
	_ = x
}

func twoLocks(a, b *sync.Mutex) {
	a.Lock()
	b.Lock()
	x := 1
	b.Unlock()
	x = 2
	a.Unlock()
	_ = x
}
`

func TestMutexHeldAt(t *testing.T) {
	pass := parsePass(t, cfgSrc)
	cases := []struct {
		fn   string
		want [][]string
	}{
		// x := 0 before the lock, x = 1 inside, x = 2 after.
		{"straightLine", [][]string{nil, {"mu"}, nil}},
		// The conditional unlock kills the lock at the join.
		{"branchRelease", [][]string{nil}},
		// Both branches acquire: held at the join.
		{"bothBranchesHold", [][]string{nil, {"mu"}}},
		// Loop-carried state converges: held inside the critical section.
		{"loopBody", [][]string{nil, {"mu"}}},
		// The early-return path releases, the fallthrough path still holds.
		{"earlyReturn", [][]string{{"mu"}}},
		// Promoted methods of an embedded sync.Mutex are recognized.
		{"embedded", [][]string{{"g"}}},
		// Nested critical sections stack and unwind.
		{"twoLocks", [][]string{{"a", "b"}, {"a"}}},
	}
	for _, tc := range cases {
		got := locksAtWrites(pass, funcBody(t, pass, tc.fn))
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %d writes to x, want %d (%v)", tc.fn, len(got), len(tc.want), got)
			continue
		}
		for i := range got {
			if !equalStrings(got[i], tc.want[i]) {
				t.Errorf("%s write %d: held %v, want %v", tc.fn, i, got[i], tc.want[i])
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
