package lint

import (
	"go/types"
	"testing"
)

// lookupVar resolves a package-level or function-local object by
// walking the type info's Defs for the given name. Names are unique in
// the fixtures below.
func lookupVar(t *testing.T, pass *Pass, name string) types.Object {
	t.Helper()
	var found types.Object
	for id, obj := range pass.Info.Defs {
		if obj != nil && id.Name == name {
			if found != nil {
				t.Fatalf("fixture defines %q twice", name)
			}
			found = obj
		}
	}
	if found == nil {
		t.Fatalf("no definition of %q in fixture", name)
	}
	return found
}

const goctxSrc = `package p

import "sync"

type task struct {
	fn func()
}

func runTasks(workers int, tasks []task) {
	var wg sync.WaitGroup
	claimed := make(chan int, len(tasks))
	for i := range tasks {
		claimed <- i
	}
	close(claimed)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range claimed {
				tasks[i].fn()
			}
		}()
	}
	wg.Wait()
}

// dispatch launders the task slice through a helper so the fixed-point
// propagation, not just the direct call, must find the closures.
func dispatch(ts []task) {
	runTasks(2, ts)
}

func loopLaunch(items []int) {
	captured := 0
	for _, it := range items {
		perIter := it
		go func() {
			local := perIter + captured
			_ = local
		}()
	}
}

func singleLaunch(done chan int) {
	go func() {
		done <- 1
	}()
}

func pooled(items []int) {
	var ts []task
	shared := 0
	for _, elt := range items {
		eltCopy := elt
		ts = append(ts, task{fn: func() {
			shared = shared + eltCopy
		}})
	}
	dispatch(ts)
}

type svc struct {
	n int
}

func (s *svc) work(wg *sync.WaitGroup) {
	defer wg.Done()
	s.n++
}

func methodPool(k int) {
	s := &svc{}
	var wg sync.WaitGroup
	for g := 0; g < k; g++ {
		wg.Add(1)
		go s.work(&wg)
	}
	wg.Wait()
}
`

// contextsByKind buckets the index for assertion convenience.
func contextsByKind(idx *goCtxIndex) map[string][]*goContext {
	out := make(map[string][]*goContext)
	for _, c := range idx.ctxs {
		out[c.kind] = append(out[c.kind], c)
	}
	return out
}

func TestGoroutineContexts(t *testing.T) {
	pass := parsePass(t, goctxSrc)
	idx := goroutineContexts(pass)
	byKind := contextsByKind(idx)

	// Four go-statement contexts: the pool worker in runTasks, the loop
	// launch, the single launch, and the named-method launch. One task
	// closure, found through the dispatch() indirection.
	var goCtxs, taskCtxs, named []*goContext
	for _, c := range byKind["goroutine"] {
		if c.decl != nil {
			named = append(named, c)
		} else {
			goCtxs = append(goCtxs, c)
		}
	}
	taskCtxs = byKind["task closure"]
	if len(goCtxs) != 3 || len(taskCtxs) != 1 || len(named) != 1 {
		t.Fatalf("got %d go-stmt, %d task-closure, %d named contexts; want 3/1/1",
			len(goCtxs), len(taskCtxs), len(named))
	}

	// multi: every looped launch is multi, the single launch is not.
	multiCount := 0
	for _, c := range goCtxs {
		if c.multi {
			multiCount++
		}
	}
	if multiCount != 2 {
		t.Errorf("want 2 multi go-stmt contexts (runTasks worker, loopLaunch), got %d", multiCount)
	}
	tc := taskCtxs[0]
	if !tc.multi {
		t.Error("task closure created inside a loop must be multi")
	}

	// Freshness inside the task closure: the shadowed per-iteration `it`
	// is fresh, the captured accumulator `shared` is not.
	if !tc.fresh(lookupVar(t, pass, "eltCopy")) {
		t.Error("per-iteration redeclaration must be fresh in the task closure")
	}
	if tc.fresh(lookupVar(t, pass, "shared")) {
		t.Error("captured outer accumulator must not be fresh")
	}

	// Freshness in the loop-launch context: loop-body locals are fresh,
	// outer captures are not, and context-body locals are owned.
	var loopCtx *goContext
	for _, c := range goCtxs {
		if c.multi && c.loop != nil && len(c.lit.Body.List) == 2 {
			loopCtx = c
		}
	}
	if loopCtx == nil {
		t.Fatal("loopLaunch context not found")
	}
	if !loopCtx.fresh(lookupVar(t, pass, "perIter")) {
		t.Error("loop-body declaration must be fresh for each goroutine instance")
	}
	if loopCtx.fresh(lookupVar(t, pass, "captured")) {
		t.Error("pre-loop declaration must not be fresh")
	}
	if !loopCtx.owns(lookupVar(t, pass, "local")) {
		t.Error("context-body local must be owned")
	}

	// The named method pool: launched in a loop with a receiver declared
	// outside it, so it is multi and the receiver is shared (not owned).
	nc := named[0]
	if !nc.multi {
		t.Error("method launched from a loop must be multi")
	}
	if nc.recvShared == nil {
		t.Error("loop-invariant receiver must be marked shared")
	} else if nc.owns(nc.recvShared) {
		t.Error("a shared receiver must not count as context-owned")
	}
}
