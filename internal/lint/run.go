package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//dctlint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// analyzer name must match the diagnostic's analyzer, and a reason is
// mandatory — an unexplained suppression is itself reported.
const ignorePrefix = "//dctlint:ignore"

// RunPackage runs the analyzers over one loaded package, filters
// suppressed findings, and returns the remainder sorted by position.
// Malformed //dctlint:ignore directives are reported as diagnostics
// attributed to the pseudo-analyzer "dctlint". An analyzer's AppliesTo
// gate is honoured here so the driver and tests see identical behaviour.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	directives, diags := collectDirectives(pkg, analyzers)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
		}
		name := a.Name
		pass.report = func(pos token.Pos, msg string) {
			p := pkg.Fset.Position(pos)
			if directives.suppressed(name, p) {
				return
			}
			diags = append(diags, Diagnostic{Pos: p, Analyzer: name, Message: msg})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	// Stale-suppression audit: a directive whose analyzer ran on this
	// package but silenced nothing is reported, so suppressions cannot
	// outlive the code they excused. Directives for analyzers gated off
	// by AppliesTo are left alone — this run cannot judge them.
	for key, d := range directives {
		if d.used || !ran[key.analyzer] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      d.pos,
			Analyzer: "dctlint",
			Message:  fmt.Sprintf("stale suppression: no %s diagnostic on this line or the next; remove the directive", key.analyzer),
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// directiveKey locates one suppression: a file, a line, and the analyzer
// it silences.
type directiveKey struct {
	file     string
	line     int
	analyzer string
}

// directiveState tracks one well-formed directive: where it sits and
// whether it has silenced at least one diagnostic this run.
type directiveState struct {
	pos  token.Position
	used bool
}

type directiveSet map[directiveKey]*directiveState

// suppressed reports whether a diagnostic from analyzer at p is covered
// by a directive on the same line or the line above, marking the
// covering directive as used for the stale audit.
func (d directiveSet) suppressed(analyzer string, p token.Position) bool {
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if s := d[directiveKey{p.Filename, line, analyzer}]; s != nil {
			s.used = true
			return true
		}
	}
	return false
}

// collectDirectives scans every comment in the package for
// //dctlint:ignore directives. Malformed directives (unknown analyzer,
// missing reason) come back as diagnostics so they fail the build
// instead of silently suppressing nothing.
func collectDirectives(pkg *Package, analyzers []*Analyzer) (directiveSet, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	set := make(directiveSet)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0 || !known[fields[0]]:
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "dctlint",
						Message:  fmt.Sprintf("malformed directive: want %s <analyzer> <reason> with a known analyzer", ignorePrefix),
					})
				case len(fields) < 2:
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "dctlint",
						Message:  fmt.Sprintf("suppression of %s needs a reason: %s %s <reason>", fields[0], ignorePrefix, fields[0]),
					})
				default:
					set[directiveKey{pos.Filename, pos.Line, fields[0]}] = &directiveState{pos: pos}
				}
			}
		}
	}
	return set, diags
}
