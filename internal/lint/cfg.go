package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A lightweight intra-function control-flow graph over statements,
// built for the must-hold lock analysis that mergeorder and sharedslot
// use to tell a mutex-guarded merge from an unsynchronized write.
//
// Only "atomic" statements — assignments, expression statements,
// declarations, sends, returns — are placed in blocks; compound
// statements contribute edges. The graph is conservative where Go's
// control flow is rich: loop conditions may exit at any iteration,
// switches may match any case, labeled break/continue and goto simply
// end their block without an edge (under-connecting the graph can only
// grow the must-hold sets of unreachable joins, and the analysis
// treats blocks with no predecessors as unreachable anyway — see the
// TOP handling in mutexHeldAt).
type cfgBlock struct {
	stmts []ast.Stmt
	succs []int
}

type funcCFG struct {
	blocks []*cfgBlock
}

type cfgBuilder struct {
	g         *funcCFG
	cur       int // current block, or -1 after a terminator
	breaks    []int
	continues []int
	nextCase  int // fallthrough target, -1 outside switch bodies
}

func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, nextCase: -1}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	return b.g
}

func (b *cfgBuilder) newBlock() int {
	b.g.blocks = append(b.g.blocks, &cfgBlock{})
	return len(b.g.blocks) - 1
}

func (b *cfgBuilder) edge(from, to int) {
	if from >= 0 {
		b.g.blocks[from].succs = append(b.g.blocks[from].succs, to)
	}
}

func (b *cfgBuilder) emit(s ast.Stmt) {
	if b.cur < 0 {
		// Dead code after a terminator: give it a block with no
		// predecessors so the analysis knows it is unreachable.
		b.cur = b.newBlock()
	}
	blk := b.g.blocks[b.cur]
	blk.stmts = append(blk.stmts, s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if b.cur < 0 {
			b.cur = b.newBlock()
		}
		head := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(head, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if b.cur < 0 {
			b.cur = b.newBlock()
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		// Even a `for {}` gets the exit edge: a break may leave at any
		// point and precision there is not worth the special case.
		b.edge(head, after)
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, post)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, post)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = post
		if s.Post != nil {
			b.emit(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = after

	case *ast.RangeStmt:
		if b.cur < 0 {
			b.cur = b.newBlock()
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, head)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Body)
	case *ast.TypeSwitchStmt:
		if s.Assign != nil {
			b.emit(s.Assign)
		}
		b.switchStmt(s.Init, s.Body)

	case *ast.SelectStmt:
		if b.cur < 0 {
			b.cur = b.newBlock()
		}
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, after)
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.emit(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.LabeledStmt:
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label == nil && len(b.breaks) > 0 {
				b.edge(b.cur, b.breaks[len(b.breaks)-1])
			}
		case token.CONTINUE:
			if s.Label == nil && len(b.continues) > 0 {
				b.edge(b.cur, b.continues[len(b.continues)-1])
			}
		case token.FALLTHROUGH:
			if b.nextCase >= 0 {
				b.edge(b.cur, b.nextCase)
			}
		}
		b.cur = -1

	case *ast.ReturnStmt:
		b.emit(s)
		b.cur = -1

	default:
		// Assignments, calls, declarations, sends, go/defer, inc/dec,
		// empty statements: straight-line.
		b.emit(s)
	}
}

func (b *cfgBuilder) switchStmt(init ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.emit(init)
	}
	if b.cur < 0 {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()
	hasDefault := false
	ids := make([]int, len(body.List))
	for i := range body.List {
		ids[i] = b.newBlock()
		b.edge(head, ids[i])
	}
	b.breaks = append(b.breaks, after)
	savedNext := b.nextCase
	for i, cc := range body.List {
		cc := cc.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.nextCase = -1
		if i+1 < len(ids) {
			b.nextCase = ids[i+1]
		}
		b.cur = ids[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.nextCase = savedNext
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

// ---- must-hold mutex dataflow ----

// lockKey names one mutex value by its root object and spelled access
// path, so `res.mu` and `other.mu` stay distinct while two mentions of
// the same path unify.
type lockKey struct {
	obj  types.Object
	path string
}

// mutexHeldAt computes, for every atomic statement in body, the set of
// sync mutexes provably held on every path reaching it. Statements with
// an empty set are absent from the map. The forward analysis joins by
// intersection, initializing non-entry blocks to TOP (all locks) so
// loops converge to the must-hold fixed point; nested function literals
// are opaque (their bodies neither acquire nor release for the
// enclosing frame at this level).
func mutexHeldAt(pass *Pass, body *ast.BlockStmt) map[ast.Stmt][]lockKey {
	// Cheap bail-out: no lock operations anywhere means no held sets.
	any := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, _ := mutexOp(pass.Info, call); op == lockOp {
				any = true
			}
		}
		return !any
	})
	if !any {
		return nil
	}

	g := buildCFG(body)
	n := len(g.blocks)
	preds := make([][]int, n)
	for i, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], i)
		}
	}

	// in/out lock sets per block; top[i] marks TOP (unreachable so far).
	inSet := make([]map[lockKey]bool, n)
	outSet := make([]map[lockKey]bool, n)
	inTop := make([]bool, n)
	outTop := make([]bool, n)
	for i := range inTop {
		inTop[i] = i != 0
		outTop[i] = true
	}
	inSet[0] = map[lockKey]bool{}

	transfer := func(i int) (map[lockKey]bool, bool) {
		if inTop[i] {
			return nil, true
		}
		cur := make(map[lockKey]bool, len(inSet[i]))
		for k := range inSet[i] {
			cur[k] = true
		}
		for _, s := range g.blocks[i].stmts {
			applyLockOps(pass, s, cur)
		}
		return cur, false
	}

	for changed := true; changed; {
		changed = false
		for i := range g.blocks {
			if i != 0 {
				newIn, newTop := joinPreds(preds[i], outSet, outTop)
				if newTop != inTop[i] || !sameSet(newIn, inSet[i]) {
					inSet[i], inTop[i] = newIn, newTop
					changed = true
				}
			}
			newOut, newTop := transfer(i)
			if newTop != outTop[i] || !sameSet(newOut, outSet[i]) {
				outSet[i], outTop[i] = newOut, newTop
				changed = true
			}
		}
	}

	// Final pass: record each reachable statement's entry set.
	held := make(map[ast.Stmt][]lockKey)
	for i, blk := range g.blocks {
		if inTop[i] {
			continue
		}
		cur := make(map[lockKey]bool, len(inSet[i]))
		for k := range inSet[i] {
			cur[k] = true
		}
		for _, s := range blk.stmts {
			if len(cur) > 0 {
				keys := make([]lockKey, 0, len(cur))
				for k := range cur {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(a, b int) bool { return keys[a].path < keys[b].path })
				held[s] = keys
			}
			applyLockOps(pass, s, cur)
		}
	}
	return held
}

func joinPreds(preds []int, outSet []map[lockKey]bool, outTop []bool) (map[lockKey]bool, bool) {
	first := true
	var acc map[lockKey]bool
	for _, p := range preds {
		if outTop[p] {
			continue
		}
		if first {
			first = false
			acc = make(map[lockKey]bool, len(outSet[p]))
			for k := range outSet[p] {
				acc[k] = true
			}
			continue
		}
		for k := range acc {
			if !outSet[p][k] {
				delete(acc, k)
			}
		}
	}
	if first {
		return nil, true // all predecessors TOP (or none): unreachable
	}
	return acc, false
}

func sameSet(a, b map[lockKey]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// applyLockOps updates the running lock set with the Lock/Unlock calls
// in one atomic statement, without descending into function literals.
func applyLockOps(pass *Pass, s ast.Stmt, cur map[lockKey]bool) {
	// A deferred unlock releases at function exit, not here; a deferred
	// lock would be bizarre. Either way defer does not change the set at
	// the statements that follow.
	if _, isDefer := s.(*ast.DeferStmt); isDefer {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, key := mutexOp(pass.Info, call)
		switch op {
		case lockOp:
			cur[key] = true
		case unlockOp:
			delete(cur, key)
		}
		return true
	})
}

type lockOpKind int

const (
	noOp lockOpKind = iota
	lockOp
	unlockOp
)

// mutexOp classifies a call as a sync lock acquire/release on a keyable
// receiver. Resolution goes through the selection's method object, so
// promoted methods of embedded sync.Mutex fields are recognized too.
func mutexOp(info *types.Info, call *ast.CallExpr) (lockOpKind, lockKey) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return noOp, lockKey{}
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return noOp, lockKey{}
	}
	m, ok := s.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return noOp, lockKey{}
	}
	var op lockOpKind
	switch m.Name() {
	case "Lock", "RLock":
		op = lockOp
	case "Unlock", "RUnlock":
		op = unlockOp
	default:
		return noOp, lockKey{}
	}
	obj := baseObject(info, sel.X)
	if obj == nil {
		return noOp, lockKey{}
	}
	return op, lockKey{obj: obj, path: exprString(sel.X)}
}

// heldCaptured filters the held set at the statement nearest the top of
// stack down to mutexes captured from outside the context — the only
// ones that can serialize cross-goroutine access. The scan stops at a
// function-literal boundary: a write inside a nested literal does not
// inherit its creation site's lock state.
func heldCaptured(c *goContext, held map[ast.Stmt][]lockKey, stack []ast.Node) []lockKey {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok && lit != c.lit {
			return nil
		}
		s, ok := stack[i].(ast.Stmt)
		if !ok {
			continue
		}
		keys, ok := held[s]
		if !ok {
			continue
		}
		var out []lockKey
		for _, k := range keys {
			if !c.owns(k.obj) {
				out = append(out, k)
			}
		}
		return out
	}
	return nil
}
