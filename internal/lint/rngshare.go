package lint

import (
	"go/ast"
	"go/types"
)

// RNGShare flags one pseudo-random stream feeding more than one
// goroutine instance. A shared *rand.Rand (or stats.RNG) makes the
// draw sequence an interleaving chosen by the scheduler — the same
// class of bug PR 1 and PR 6 solved with forked per-domain streams.
// Three flows are recognized:
//
//   - capture: an RNG value used inside a goroutine context that is not
//     fresh per instance (directly, through a struct field, or through
//     a shared-index slot);
//   - receiver field: a method launched as `go x.m(...)` on a shared
//     receiver whose struct carries an RNG field;
//   - channel: the same RNG variable sent repeatedly on a channel in a
//     loop, handing one stream to every receiver.
//
// The fix is always the same shape: fork a child stream per task or
// domain on the coordinator (stats.RNG.Fork) and hand each context its
// own.
var RNGShare = &Analyzer{
	Name: "rngshare",
	Doc:  "one RNG stream flows into more than one goroutine context (capture, struct field, or channel); fork per-task streams instead",
	Run:  runRNGShare,
}

type rngUse struct {
	ctx  *goContext
	root types.Object
	path string
	pos  ast.Node
	expr string
}

func runRNGShare(pass *Pass) error {
	idx := goroutineContexts(pass)

	// Captured-stream uses, grouped by (root, access path) so the
	// canonical per-domain fix — rngs[i] with a task-derived i — groups
	// nothing and passes.
	var uses []rngUse
	for _, c := range idx.ctxs {
		c := c
		skipSel := make(map[*ast.Ident]bool)
		idx.walkBody(c, func(n ast.Node, stack []ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				// The whole selector is the use; its Sel identifier
				// alone would double-count the same stream.
				skipSel[sel.Sel] = true
			}
			e, ok := n.(ast.Expr)
			if !ok || !isRNGType(pass.Info.TypeOf(e)) {
				return true
			}
			switch x := e.(type) {
			case *ast.Ident:
				if skipSel[x] || pass.Info.Defs[x] != nil {
					return true // a selection's field, or a declaration
				}
			case *ast.SelectorExpr, *ast.IndexExpr:
			default:
				return true // calls, composite literals: fresh values
			}
			root, steps := lvalueSteps(pass, c, e)
			if root == nil || perInstanceRNG(c, root, steps) {
				return true
			}
			uses = append(uses, rngUse{ctx: c, root: root, path: stepsPath(root, steps), pos: e, expr: exprString(e)})
			return true
		})
	}
	type rngKey struct {
		root types.Object
		path string
	}
	byPath := make(map[rngKey][]int)
	for i, u := range uses {
		byPath[rngKey{u.root, u.path}] = append(byPath[rngKey{u.root, u.path}], i)
	}
	for _, u := range uses {
		shared := u.ctx.multi
		for _, i := range byPath[rngKey{u.root, u.path}] {
			if uses[i].ctx != u.ctx {
				shared = true
			}
		}
		if shared {
			pass.Reportf(u.pos.Pos(), "RNG %s is shared across goroutine instances: the draw sequence follows the scheduler's interleaving; fork a per-task stream on the coordinator (stats.RNG.Fork) and capture that", u.expr)
		}
	}

	// Shared receivers with RNG fields.
	for _, c := range idx.ctxs {
		if !c.multi || c.recvShared == nil {
			continue
		}
		if name := rngFieldName(c.recvShared.Type()); name != "" {
			pass.Reportf(c.site.Pos(), "goroutine-launched method shares receiver %s whose field %s is an RNG: every worker draws from one stream; fork per-worker streams (stats.RNG.Fork)", c.recvShared.Name(), name)
		}
	}

	// The same RNG variable sent on a channel in a loop.
	for _, file := range pass.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			s, ok := n.(*ast.SendStmt)
			if !ok || !isRNGType(pass.Info.TypeOf(s.Value)) {
				return true
			}
			switch ast.Unparen(s.Value).(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			default:
				return true // a freshly constructed value per send
			}
			loop := innermostLoop(stack)
			if loop == nil || exprVarsWithin(pass, s.Value, loop) {
				return true
			}
			pass.Reportf(s.Pos(), "the same RNG %s is sent on a channel inside a loop: every receiver shares one stream; fork and send per-receiver streams (stats.RNG.Fork)", exprString(s.Value))
			return true
		})
	}
	return nil
}

// perInstanceRNG reports whether the RNG reached through this path is
// distinct per context instance: the first index step decides (a
// task-derived slot out of a captured pool is per-instance, a shared,
// constant, or map index is one stream for everyone), and an index-free
// path is per-instance only when its root is fresh.
func perInstanceRNG(c *goContext, root types.Object, steps []writeStep) bool {
	for _, s := range steps {
		switch s.kind {
		case stepIndexTask:
			return true
		case stepIndexShared, stepIndexConst, stepIndexMap:
			return false
		}
	}
	return c.fresh(root)
}

// stepsPath renders a stable grouping key for an access path.
func stepsPath(root types.Object, steps []writeStep) string {
	out := root.Name()
	for _, s := range steps {
		switch s.kind {
		case stepField:
			out += "." + s.name
		case stepIndexConst:
			out += "[" + s.name + "]"
		case stepIndexTask:
			out += "[task]"
		default:
			out += "[?]"
		}
	}
	return out
}

// rngFieldName returns the name of the first RNG-typed field of the
// struct underneath t (pointers peeled), or "".
func rngFieldName(t types.Type) string {
	n := namedRecv(t)
	if n == nil {
		return ""
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isRNGType(st.Field(i).Type()) {
			return st.Field(i).Name()
		}
	}
	return ""
}
