package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MergeOrder enforces rule 3 of the parallel determinism contract
// (internal/core/parallel.go): results are merged on one goroutine in a
// fixed order, never accumulated concurrently. It flags, inside
// goroutine contexts,
//
//   - updates of captured state performed while a captured mutex is
//     held — the lock makes the merge race-free but its order still
//     follows the scheduler;
//   - atomic reductions (sync/atomic Add/Or/And/Swap/Store families,
//     method or package form) on captured state when more than one
//     context instance performs them, unless the result is consumed
//     (consumed results are coordination — task claiming — not merging);
//   - bare read-modify-write accumulation (`x += v`, `x++`) on captured
//     non-float state shared across instances or contexts. Float
//     accumulators stay with floatsum, which explains the
//     rounding-order consequence specifically.
//
// CompareAndSwap is exempt: CAS loops implement claim protocols whose
// winners are data-determined, the contract's sanctioned use.
var MergeOrder = &Analyzer{
	Name: "mergeorder",
	Doc:  "reduction merged across goroutines (mutex-guarded update, scheduler-ordered atomic, or shared accumulator) instead of a single-goroutine fixed-order merge",
	Run:  runMergeOrder,
}

type mergeKind int

const (
	mergeGuarded mergeKind = iota // write under captured mutex
	mergeAtomic                   // atomic reduction, result unused
	mergeAccum                    // bare op-assign / inc-dec
)

type mergeWrite struct {
	ctx  *goContext
	root types.Object
	kind mergeKind
	pos  token.Pos
	expr string
	lock string // mutex path for mergeGuarded
}

func runMergeOrder(pass *Pass) error {
	idx := goroutineContexts(pass)
	var writes []mergeWrite
	for _, c := range idx.ctxs {
		c := c
		held := mutexHeldAt(pass, c.body())
		idx.walkBody(c, func(n ast.Node, stack []ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if s.Tok == token.DEFINE {
					return true
				}
				locks := heldCaptured(c, held, stack)
				for _, lhs := range s.Lhs {
					w, ok := classifyMerge(pass, c, lhs, s.Tok, locks)
					if ok {
						writes = append(writes, w)
					}
				}
			case *ast.IncDecStmt:
				w, ok := classifyMerge(pass, c, s.X, token.ADD_ASSIGN, heldCaptured(c, held, stack))
				if ok {
					writes = append(writes, w)
				}
			case *ast.CallExpr:
				if w, ok := classifyAtomic(pass, c, s, stack); ok {
					writes = append(writes, w)
				}
			}
			return true
		})
	}

	byRoot := make(map[types.Object][]int)
	for i, w := range writes {
		byRoot[w.root] = append(byRoot[w.root], i)
	}
	cross := func(w mergeWrite) bool {
		if w.ctx.multi {
			return true
		}
		for _, i := range byRoot[w.root] {
			if writes[i].ctx != w.ctx {
				return true
			}
		}
		return false
	}
	for _, w := range writes {
		switch w.kind {
		case mergeGuarded:
			pass.Reportf(w.pos, "update of captured %s under mutex %s inside a %s: the lock serializes the merge but its order still follows the scheduler; fold per-task slots on one goroutine in fixed order", w.expr, w.lock, w.ctx.kind)
		case mergeAtomic:
			if cross(w) {
				pass.Reportf(w.pos, "atomic reduction into captured %s inside a %s: race-free but scheduler-ordered; keep per-task slots and fold them on one goroutine in fixed order", w.expr, w.ctx.kind)
			}
		case mergeAccum:
			if cross(w) {
				pass.Reportf(w.pos, "accumulation into captured %s across goroutines: merge order (and the race) follows the scheduler; keep per-task partials and fold them on one goroutine in fixed order", w.expr)
			}
		}
	}
	return nil
}

// classifyMerge decides whether one lvalue write is a merge-discipline
// finding: a guarded write (any operator) or a bare read-modify-write.
func classifyMerge(pass *Pass, c *goContext, lhs ast.Expr, tok token.Token, locks []lockKey) (mergeWrite, bool) {
	root, steps := lvalueSteps(pass, c, lhs)
	if root == nil || c.fresh(root) || hasStep(steps, stepIndexTask) {
		return mergeWrite{}, false
	}
	if tok != token.ASSIGN && isFloat(pass.Info.TypeOf(lhs)) {
		return mergeWrite{}, false // floatsum's finding, locked or not
	}
	w := mergeWrite{ctx: c, root: root, pos: lhs.Pos(), expr: exprString(lhs)}
	if len(locks) > 0 {
		w.kind = mergeGuarded
		w.lock = locks[0].path
		return w, true
	}
	if tok == token.ASSIGN {
		return mergeWrite{}, false // unguarded plain overwrites are sharedslot's
	}
	w.kind = mergeAccum
	return w, true
}

// classifyAtomic recognizes sync/atomic reductions on captured state:
// Add/Or/And/Swap/Store with the result unused, in method form
// (v.Add(1)) or package form (atomic.AddInt64(&v, 1)).
func classifyAtomic(pass *Pass, c *goContext, call *ast.CallExpr, stack []ast.Node) (mergeWrite, bool) {
	var target ast.Expr
	if name, recv := methodCall(pass.Info, call); recv != nil {
		if m := calleeFunc(pass.Info, call); m == nil || m.Pkg() == nil || m.Pkg().Path() != "sync/atomic" {
			return mergeWrite{}, false
		} else if !isAtomicReduceName(name) {
			return mergeWrite{}, false
		}
		target = recv
	} else if fn := pkgFunc(pass.Info, call); fn != nil && fn.Pkg().Path() == "sync/atomic" && isAtomicReduceName(fn.Name()) && len(call.Args) > 0 {
		arg := ast.Unparen(call.Args[0])
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			target = u.X
		} else {
			target = arg
		}
	} else {
		return mergeWrite{}, false
	}
	// A consumed result is a claim/coordination protocol (the pool's
	// `next.Add(1)`), not a merge.
	if len(stack) < 2 {
		return mergeWrite{}, false
	}
	if _, unused := stack[len(stack)-2].(*ast.ExprStmt); !unused {
		return mergeWrite{}, false
	}
	root, steps := lvalueSteps(pass, c, target)
	if root == nil || c.fresh(root) || hasStep(steps, stepIndexTask) {
		return mergeWrite{}, false
	}
	return mergeWrite{
		ctx: c, root: root, kind: mergeAtomic,
		pos: call.Pos(), expr: exprString(target),
	}, true
}

// isAtomicReduceName matches the reducing sync/atomic operations.
// CompareAndSwap and Load are excluded by construction.
func isAtomicReduceName(name string) bool {
	if strings.HasPrefix(name, "CompareAndSwap") {
		return false
	}
	for _, p := range []string{"Add", "Or", "And", "Swap", "Store"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
