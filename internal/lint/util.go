package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// baseObject peels index, selector, star, and paren layers off an
// lvalue expression and returns the object of the root identifier:
// shared[i*r+j] → shared, a.b.c → a, (*p).x → p. It returns nil when
// the root is not a plain identifier (say, a function call).
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range. Objects with no position (builtins, nil) count as
// outside.
func declaredWithin(obj types.Object, node ast.Node) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// pkgFunc returns the package-level function a call resolves to, or nil
// for methods, locals, builtins, and non-functions.
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if _, isSel := info.Selections[fun]; isSel {
			return nil // method or field, not pkg.Func
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.ObjectOf(id).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil
	}
	return fn
}

// isPkgName reports whether id names an imported package.
func isPkgName(info *types.Info, id *ast.Ident) bool {
	_, ok := info.ObjectOf(id).(*types.PkgName)
	return ok
}

// calleeFunc resolves a call to the *types.Func it invokes — package
// function or method, through selector or plain identifier — or nil for
// builtins, function-typed variables, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if s.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// methodCall returns the method name and receiver expression of call
// when it is a method invocation (x.M(...)), else ("", nil).
func methodCall(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", nil
	}
	return sel.Sel.Name, sel.X
}

// namedRecv dereferences pointers off t and returns the named type
// underneath, if any.
func namedRecv(t types.Type) *types.Named {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		n, _ := t.(*types.Named)
		return n
	}
}

// isRNGType reports whether t (possibly behind pointers) is a known
// deterministic-stream RNG type: math/rand.Rand, math/rand/v2.Rand, or
// this repo's internal/stats.RNG.
func isRNGType(t types.Type) bool {
	n := namedRecv(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	switch {
	case (path == "math/rand" || path == "math/rand/v2") && name == "Rand":
		return true
	case strings.HasSuffix(path, "internal/stats") && name == "RNG":
		return true
	}
	return false
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// inspectWithStack walks root like ast.Inspect while maintaining the
// ancestor stack (root first, current node last) for the callback.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// ast.Inspect will not descend, so it will not deliver the
			// matching pop; undo the push ourselves.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosingFunc returns the innermost function declaration or literal in
// stack, which must be ordered outermost-first.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
