package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dctraffic/internal/lint"
)

// writeModule lays out a throwaway module so Load's `go list` + source
// type-checking path runs against controlled inputs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func fileNames(pkg *lint.Package) []string {
	var names []string
	for _, f := range pkg.Files {
		names = append(names, filepath.Base(pkg.Fset.File(f.Pos()).Name()))
	}
	return names
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestLoadBuildTagsAndTestPackages pins three loader behaviors the
// analyzers depend on: build-constrained files follow the build
// context (a satisfied constraint is loaded, an impossible one is
// skipped), in-package _test.go files type-check together with the
// compiled files, and external _test packages become their own unit
// with a "_test"-suffixed path.
func TestLoadBuildTagsAndTestPackages(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module loadprobe\n\ngo 1.23\n",
		"p/p.go": `package p

func Double(x int) int { return 2 * x }
`,
		// Satisfied constraint: !neverset holds in the default context,
		// so this file (and its seeded violation) must be analyzed.
		"p/tagged_on.go": `//go:build !neverset

package p

func MapAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
`,
		// Impossible constraint: the file is excluded by go list. It
		// would not even parse, which makes silent inclusion loud.
		"p/tagged_off.go": `//go:build neverset

package p

this is not Go
`,
		// In-package test file: checked with the compiled files, so its
		// helpers resolve against unexported declarations.
		"p/p_test.go": `package p

func doubleTwice(x int) int { return Double(Double(x)) }
`,
		// External test package: a separate unit importing the real one.
		"p/x_test.go": `package p_test

import "loadprobe/p"

var _ = p.Double
`,
	})

	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*lint.Package)
	for _, pkg := range pkgs {
		byPath[pkg.Path] = pkg
	}
	main, ok := byPath["loadprobe/p"]
	if !ok {
		t.Fatalf("package loadprobe/p not loaded; got %v", pathsOf(pkgs))
	}
	ext, ok := byPath["loadprobe/p_test"]
	if !ok {
		t.Fatalf("external test package not loaded as its own unit; got %v", pathsOf(pkgs))
	}

	names := fileNames(main)
	if !hasName(names, "tagged_on.go") {
		t.Errorf("satisfied build constraint excluded: files %v", names)
	}
	if hasName(names, "tagged_off.go") {
		t.Errorf("impossible build constraint loaded: files %v", names)
	}
	if !hasName(names, "p_test.go") {
		t.Errorf("in-package test file not in the compiled unit: files %v", names)
	}
	if extNames := fileNames(ext); !hasName(extNames, "x_test.go") || len(extNames) != 1 {
		t.Errorf("external test unit files = %v, want exactly [x_test.go]", extNames)
	}

	// The seeded violation lives in the build-tagged file: the analyzers
	// (including the dataflow layers) must see exactly what the build
	// context sees.
	diags, err := lint.RunPackage(main, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, d := range diags {
		if d.Analyzer == "mapiter" && filepath.Base(d.Pos.Filename) == "tagged_on.go" {
			hit = true
		}
	}
	if !hit {
		t.Errorf("seeded mapiter violation in tagged_on.go not found; diags: %v", diags)
	}
}

// TestLoadAppliesToGating pins the driver-side gate: walltime runs on
// internal/ simulation packages and nowhere else, so an identical
// time.Now call is a finding in one package and silence in another.
func TestLoadAppliesToGating(t *testing.T) {
	const clockSrc = `package %s

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`
	dir := writeModule(t, map[string]string{
		"go.mod":                 "module gateprobe\n\ngo 1.23\n",
		"internal/netsim/sim.go": strings.Replace(clockSrc, "%s", "netsim", 1),
		"cmd/tool/tool.go":       strings.Replace(clockSrc, "%s", "main", 1),
	})
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	hits := make(map[string]int)
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, lint.Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			if d.Analyzer == "walltime" {
				hits[pkg.Path]++
			}
		}
	}
	if hits["gateprobe/internal/netsim"] != 1 {
		t.Errorf("walltime must fire once in the simulation package, got %v", hits)
	}
	if hits["gateprobe/cmd/tool"] != 0 {
		t.Errorf("walltime must stay gated off outside internal/, got %v", hits)
	}
}

func pathsOf(pkgs []*lint.Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}
