package flows

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

func fr(id int64, src, dst topology.ServerID, sport uint16, bytes int64, start, end netsim.Time) trace.FlowRecord {
	return trace.FlowRecord{ID: netsim.FlowID(id), Src: src, Dst: dst, SrcPort: sport, DstPort: 443,
		Bytes: bytes, Start: start, End: end}
}

func TestReassembleMergesWithinTimeout(t *testing.T) {
	records := []trace.FlowRecord{
		fr(1, 0, 1, 5000, 100, 0, 10*time.Second),
		fr(2, 0, 1, 5000, 200, 30*time.Second, 40*time.Second),   // gap 20s < 60s: merge
		fr(3, 0, 1, 5000, 400, 200*time.Second, 210*time.Second), // gap 160s: new flow
	}
	out := Reassemble(records, 60*time.Second)
	if len(out) != 2 {
		t.Fatalf("got %d flows, want 2", len(out))
	}
	if out[0].Bytes != 300 || out[0].End != 40*time.Second {
		t.Fatalf("merged flow wrong: %+v", out[0])
	}
	if out[1].Bytes != 400 {
		t.Fatalf("second flow wrong: %+v", out[1])
	}
}

func TestReassembleDistinguishesTuples(t *testing.T) {
	records := []trace.FlowRecord{
		fr(1, 0, 1, 5000, 100, 0, time.Second),
		fr(2, 0, 1, 5001, 100, 2*time.Second, 3*time.Second), // different sport
		fr(3, 0, 2, 5000, 100, 2*time.Second, 3*time.Second), // different dst
	}
	out := Reassemble(records, 60*time.Second)
	if len(out) != 3 {
		t.Fatalf("got %d flows, want 3", len(out))
	}
}

func TestReassembleDefaultTimeout(t *testing.T) {
	records := []trace.FlowRecord{
		fr(1, 0, 1, 5000, 1, 0, time.Second),
		fr(2, 0, 1, 5000, 1, 30*time.Second, 31*time.Second),
	}
	if out := Reassemble(records, 0); len(out) != 1 {
		t.Fatalf("default timeout should merge a 29s gap, got %d flows", len(out))
	}
}

func TestReassembleSortedOutput(t *testing.T) {
	records := []trace.FlowRecord{
		fr(2, 3, 4, 6000, 1, 50*time.Second, 51*time.Second),
		fr(1, 0, 1, 5000, 1, 0, time.Second),
	}
	out := Reassemble(records, time.Second)
	if out[0].Start > out[1].Start {
		t.Fatal("output not sorted by start")
	}
}

func TestDurationCDFs(t *testing.T) {
	records := []trace.FlowRecord{
		fr(1, 0, 1, 1, 10, 0, time.Second),      // 1s, 10 bytes
		fr(2, 0, 2, 2, 10, 0, 2*time.Second),    // 2s
		fr(3, 0, 3, 3, 980, 0, 100*time.Second), // 100s, carries most bytes
	}
	byFlows, byBytes := DurationCDFs(records)
	if p := byFlows.P(2); math.Abs(p-2.0/3) > 1e-9 {
		t.Fatalf("byFlows.P(2) = %v", p)
	}
	if p := byBytes.P(2); math.Abs(p-0.02) > 1e-9 {
		t.Fatalf("byBytes.P(2) = %v, want 0.02", p)
	}
}

func TestRateCDF(t *testing.T) {
	records := []trace.FlowRecord{
		fr(1, 0, 1, 1, 125_000, 0, time.Second),   // 1 Mbps
		fr(2, 0, 2, 2, 1_250_000, 0, time.Second), // 10 Mbps
		fr(3, 0, 3, 3, 5, 0, 0),                   // zero duration: skipped
	}
	c := RateCDF(records)
	if c.N() != 2 {
		t.Fatalf("rate samples = %d, want 2", c.N())
	}
	if q := c.Quantile(0.5); math.Abs(q-1) > 1e-9 {
		t.Fatalf("median rate = %v Mbps, want 1", q)
	}
}

func TestClusterInterArrivals(t *testing.T) {
	records := []trace.FlowRecord{
		fr(1, 0, 1, 1, 1, 0, time.Second),
		fr(2, 0, 2, 2, 1, 15*time.Millisecond, time.Second),
		fr(3, 0, 3, 3, 1, 45*time.Millisecond, time.Second),
	}
	gaps := ClusterInterArrivals(records)
	if len(gaps) != 2 || gaps[0] != 15 || gaps[1] != 30 {
		t.Fatalf("gaps = %v", gaps)
	}
	if got := ClusterInterArrivals(records[:1]); got != nil {
		t.Fatal("single flow has no inter-arrivals")
	}
}

func TestServerAndTorInterArrivals(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	records := []trace.FlowRecord{
		fr(1, 0, 15, 1, 1, 0, time.Second),                    // server 0 & 15, racks 0 & 1
		fr(2, 0, 25, 2, 1, 10*time.Millisecond, time.Second),  // server 0 again: 10ms gap
		fr(3, 15, 35, 3, 1, 20*time.Millisecond, time.Second), // server 15 again: 20ms gap
	}
	sg := ServerInterArrivals(records, top)
	// Server 0: gap 10; server 15: gap 20. Others have single arrivals.
	if len(sg) != 2 {
		t.Fatalf("server gaps = %v", sg)
	}
	tg := TorInterArrivals(records, top)
	// Rack 0: arrivals at 0,10 -> gap 10. Rack 1: 0,20 -> 20. Rack 2: 10;
	// rack 3: 20 (single each).
	if len(tg) != 2 {
		t.Fatalf("tor gaps = %v", tg)
	}
	// External endpoints are ignored.
	ext := topology.ServerID(top.NumServers())
	extRecords := []trace.FlowRecord{
		fr(1, ext, 0, 1, 1, 0, time.Second),
		fr(2, ext, 0, 2, 1, time.Millisecond, time.Second),
	}
	if got := ServerInterArrivals(extRecords, top); len(got) != 1 {
		t.Fatalf("expected only server-0 gap, got %v", got)
	}
}

func TestArrivalRate(t *testing.T) {
	var records []trace.FlowRecord
	for i := 0; i < 100; i++ {
		records = append(records, fr(int64(i), 0, 1, uint16(i), 1, netsim.Time(i)*100*time.Millisecond, time.Hour))
	}
	rate := ArrivalRatePerSec(records, 10*time.Second)
	if rate != 10 {
		t.Fatalf("arrival rate = %v, want 10/s", rate)
	}
	if ArrivalRatePerSec(records, 0) != 0 {
		t.Fatal("zero horizon should give 0")
	}
}

func TestSummarize(t *testing.T) {
	var records []trace.FlowRecord
	// 90 short flows with few bytes, 10 long flows.
	for i := 0; i < 90; i++ {
		records = append(records, fr(int64(i), 0, 1, uint16(i), 1000, 0, 2*time.Second))
	}
	for i := 0; i < 10; i++ {
		records = append(records, fr(int64(100+i), 0, 2, uint16(200+i), 1_000_000, 0, 300*time.Second))
	}
	s := Summarize(records, time.Hour)
	if s.NumFlows != 100 {
		t.Fatalf("NumFlows = %d", s.NumFlows)
	}
	if math.Abs(s.FracShorterThan10s-0.9) > 1e-9 {
		t.Fatalf("FracShorterThan10s = %v", s.FracShorterThan10s)
	}
	if math.Abs(s.FracLongerThan200s-0.1) > 1e-9 {
		t.Fatalf("FracLongerThan200s = %v", s.FracLongerThan200s)
	}
	// Bytes: 90*1000 vs 10*1e6 — long flows dominate bytes.
	if s.BytesInFlowsUnder25s > 0.01 {
		t.Fatalf("BytesInFlowsUnder25s = %v", s.BytesInFlowsUnder25s)
	}
}

func TestModeSpacing(t *testing.T) {
	var gaps []float64
	for i := 0; i < 100; i++ {
		gaps = append(gaps, 15+0.5*float64(i%3-1)) // cluster near 15ms
	}
	for i := 0; i < 10; i++ {
		gaps = append(gaps, float64(i*7)) // noise
	}
	mode := ModeSpacing(gaps, 2, 100, 98)
	if mode < 14 || mode > 16 {
		t.Fatalf("mode = %v, want ~15", mode)
	}
	if ModeSpacing(nil, 2, 100, 98) != 0 {
		t.Fatal("empty gaps should give 0")
	}
}

// Property: reassembly conserves bytes and never increases flow count.
func TestReassembleConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		var records []trace.FlowRecord
		var want int64
		n := 1 + r.IntN(40)
		for i := 0; i < n; i++ {
			b := int64(1 + r.IntN(10000))
			start := netsim.Time(r.IntN(300)) * time.Second
			records = append(records, fr(int64(i),
				topology.ServerID(r.IntN(4)), topology.ServerID(r.IntN(4)),
				uint16(5000+r.IntN(3)), b, start, start+time.Second))
			want += b
		}
		out := Reassemble(records, 60*time.Second)
		if len(out) > len(records) {
			return false
		}
		var got int64
		for _, o := range out {
			got += o.Bytes
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeCDFAndMax(t *testing.T) {
	records := []trace.FlowRecord{
		fr(1, 0, 1, 1, 100, 0, time.Second),
		fr(2, 0, 2, 2, 10_000, 0, time.Second),
		fr(3, 0, 3, 3, 1_000_000, 0, time.Second),
	}
	c := SizeCDF(records)
	if c.N() != 3 {
		t.Fatalf("size samples = %d", c.N())
	}
	if got := MaxFlowBytes(records); got != 1_000_000 {
		t.Fatalf("max = %d", got)
	}
	if MaxFlowBytes(nil) != 0 {
		t.Fatal("empty max should be 0")
	}
}

func TestConcurrentSeries(t *testing.T) {
	records := []trace.FlowRecord{
		fr(1, 0, 1, 1, 1, 0, 2*time.Second),                     // bins 0-1
		fr(2, 0, 2, 2, 1, time.Second, 4*time.Second),           // bins 1-3
		fr(3, 0, 3, 3, 1, 2500*time.Millisecond, 3*time.Second), // bin 2
	}
	s := ConcurrentSeries(records, time.Second, 5*time.Second)
	want := []int{1, 2, 2, 1, 0}
	if len(s) != len(want) {
		t.Fatalf("series length %d", len(s))
	}
	for i, w := range want {
		if s[i] != w {
			t.Fatalf("bin %d = %d, want %d (series %v)", i, s[i], w, s)
		}
	}
	if ConcurrentSeries(nil, 0, time.Second) != nil {
		t.Fatal("invalid bin should give nil")
	}
}

// FuzzReassemble ensures arbitrary record sets never panic the
// reconstruction and always conserve bytes.
func FuzzReassemble(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), int64(100), int64(0), int64(1000))
	f.Fuzz(func(t *testing.T, id int64, src, dst uint8, bytes, start, end int64) {
		if bytes < 0 {
			bytes = -bytes
		}
		recs := []trace.FlowRecord{
			{ID: netsim.FlowID(id), Src: topology.ServerID(src), Dst: topology.ServerID(dst),
				Bytes: bytes, Start: netsim.Time(start), End: netsim.Time(end)},
			{ID: netsim.FlowID(id + 1), Src: topology.ServerID(src), Dst: topology.ServerID(dst),
				Bytes: bytes / 2, Start: netsim.Time(end), End: netsim.Time(end + 5)},
		}
		out := Reassemble(recs, 0)
		var want, got int64
		for _, r := range recs {
			want += r.Bytes
		}
		for _, r := range out {
			got += r.Bytes
		}
		if got != want {
			t.Fatalf("bytes not conserved: %d vs %d", got, want)
		}
	})
}
