package flows

import (
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// viewFixture builds a random record set plus its indexed view, with
// records pre-sorted into the canonical (Start, ID) order so the
// slice-based and view-based functions see the same iteration order.
func viewFixture(t *testing.T, n int) ([]trace.FlowRecord, *trace.RecordView, *topology.Topology) {
	t.Helper()
	top, err := topology.New(topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3).Fork("flows_view_test")
	horizon := netsim.Time(10 * time.Minute)
	recs := make([]trace.FlowRecord, n)
	for i := range recs {
		start := netsim.Time(rng.Float64() * float64(horizon))
		recs[i] = trace.FlowRecord{
			ID:    netsim.FlowID(i),
			Src:   topology.ServerID(rng.IntN(top.NumHosts())),
			Dst:   topology.ServerID(rng.IntN(top.NumHosts())),
			Start: start,
			End:   start + netsim.Time(rng.Float64()*float64(30*time.Second)),
			Bytes: int64(1 + rng.IntN(1<<20)),
		}
	}
	v := trace.NewRecordView(recs, top)
	return v.Records(), v, top
}

// equalFloats demands bit-identity, not tolerance: the view-based
// functions are drop-in replacements inside a digest-stable pipeline.
func equalFloats(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: value %d is %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestClusterInterArrivalsViewMatches(t *testing.T) {
	recs, v, _ := viewFixture(t, 4000)
	equalFloats(t, "cluster", ClusterInterArrivalsView(v), ClusterInterArrivals(recs))
}

func TestServerInterArrivalsViewMatches(t *testing.T) {
	recs, v, top := viewFixture(t, 4000)
	equalFloats(t, "server", ServerInterArrivalsView(v), ServerInterArrivals(recs, top))
}

func TestTorInterArrivalsViewMatches(t *testing.T) {
	recs, v, top := viewFixture(t, 4000)
	equalFloats(t, "tor", TorInterArrivalsView(v), TorInterArrivals(recs, top))
}

func TestArrivalRatePerSecViewMatches(t *testing.T) {
	recs, v, _ := viewFixture(t, 4000)
	for _, horizon := range []netsim.Time{0, time.Second, time.Minute, 10 * time.Minute, time.Hour} {
		got := ArrivalRatePerSecView(v, horizon)
		want := ArrivalRatePerSec(recs, horizon)
		if got != want {
			t.Fatalf("horizon %v: view rate %v, want %v", horizon, got, want)
		}
	}
}
