package flows

import (
	"math"
	"sort"
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// streamRecords builds records with heavy five-tuple reuse so the
// inactivity-timeout merge logic actually fires, plus Start ties within
// a tuple to exercise the (Start, ID) ordering rules.
func streamRecords(t *testing.T, n int, horizon netsim.Time) []trace.FlowRecord {
	t.Helper()
	rng := stats.NewRNG(17).Fork("flows_stream_test")
	out := make([]trace.FlowRecord, n)
	for i := range out {
		start := netsim.Time(rng.Float64() * float64(horizon))
		var dur netsim.Time
		if rng.IntN(3) > 0 {
			dur = netsim.Time(rng.Float64() * float64(20*time.Second))
		}
		out[i] = trace.FlowRecord{
			ID:      netsim.FlowID(i),
			Src:     topology.ServerID(rng.IntN(8)),
			Dst:     topology.ServerID(rng.IntN(8)),
			SrcPort: uint16(rng.IntN(3)),
			DstPort: uint16(rng.IntN(3)),
			Start:   start,
			End:     start + dur,
			Bytes:   int64(1 + rng.IntN(1<<16)),
		}
	}
	// A few deliberate Start ties on the same tuple.
	for i := 0; i+1 < n; i += 97 {
		out[i+1].Start = out[i].Start
		out[i+1].End = out[i].End + netsim.Time(time.Second)
		out[i+1].Src, out[i+1].Dst = out[i].Src, out[i].Dst
		out[i+1].SrcPort, out[i+1].DstPort = out[i].SrcPort, out[i].DstPort
	}
	return out
}

func canonical(records []trace.FlowRecord) []trace.FlowRecord {
	out := make([]trace.FlowRecord, len(records))
	copy(out, records)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// The streaming reassembler must emit exactly what batch Reassemble
// produces, in the same canonical order, for several timeouts —
// including timeouts short enough that horizon finalization fires
// constantly.
func TestStreamReassemblerMatchesBatch(t *testing.T) {
	horizon := netsim.Time(5 * time.Minute)
	recs := streamRecords(t, 4000, horizon)
	for _, timeout := range []netsim.Time{0, netsim.Time(time.Second), netsim.Time(30 * time.Second), netsim.Time(10 * time.Minute)} {
		want := Reassemble(recs, timeout)
		var got []trace.FlowRecord
		sr := NewStreamReassembler(timeout, func(r trace.FlowRecord) { got = append(got, r) })
		for _, r := range canonical(recs) {
			sr.Feed(r)
		}
		sr.Close()
		if len(got) != len(want) {
			t.Fatalf("timeout %v: %d flows streamed, want %d", timeout, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("timeout %v: flow %d: %+v != %+v", timeout, i, got[i], want[i])
			}
		}
	}
}

// The pending set must stay bounded by the timeout horizon: flows
// whose end fell a timeout behind the watermark are emitted, not held.
func TestStreamReassemblerBoundedPending(t *testing.T) {
	timeout := netsim.Time(time.Second)
	var emitted int
	sr := NewStreamReassembler(timeout, func(trace.FlowRecord) { emitted++ })
	// Sequential short flows on distinct tuples, far apart in time: at
	// most a handful can be inside the horizon at once.
	peak := 0
	for i := 0; i < 1000; i++ {
		start := netsim.Time(i) * netsim.Time(time.Second)
		sr.Feed(trace.FlowRecord{
			ID:    netsim.FlowID(i),
			Src:   topology.ServerID(i % 50),
			Dst:   topology.ServerID((i + 1) % 50),
			Start: start,
			End:   start + netsim.Time(100*time.Millisecond),
			Bytes: 1,
		})
		if sr.Pending() > peak {
			peak = sr.Pending()
		}
	}
	sr.Close()
	if emitted != 1000 {
		t.Fatalf("emitted %d flows, want 1000", emitted)
	}
	if peak > 4 {
		t.Fatalf("pending peaked at %d; the horizon should keep it tiny", peak)
	}
}

// The tracker's CDFs and mode must agree with the offline View-based
// pipeline: same sample multisets, hence identical query results under
// the canonical-order CDF.
func TestInterArrivalTrackerMatchesOffline(t *testing.T) {
	top, err := topology.New(topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(23).Fork("ia_test")
	horizon := netsim.Time(2 * time.Minute)
	recs := make([]trace.FlowRecord, 3000)
	for i := range recs {
		start := netsim.Time(rng.Float64() * float64(horizon))
		recs[i] = trace.FlowRecord{
			ID:    netsim.FlowID(i),
			Src:   topology.ServerID(rng.IntN(top.NumHosts())),
			Dst:   topology.ServerID(rng.IntN(top.NumHosts())),
			Start: start,
			End:   start,
			Bytes: 1,
		}
	}
	v := trace.NewRecordView(recs, top)
	wantCluster := stats.NewCDF(ClusterInterArrivalsView(v))
	wantTor := stats.NewCDF(TorInterArrivalsView(v))
	serverGaps := ServerInterArrivalsView(v)
	wantServer := stats.NewCDF(serverGaps)
	wantMode := ModeSpacing(serverGaps, 2, 100, 196)

	it := NewInterArrivalTracker(top, -1)
	for _, r := range canonical(recs) {
		r := r
		it.Observe(&r)
	}

	check := func(name string, got *stats.StreamCDF, want *stats.CDF) {
		t.Helper()
		if int(got.N()) != want.N() {
			t.Fatalf("%s: %d samples, want %d", name, got.N(), want.N())
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
			if math.Float64bits(got.Quantile(q)) != math.Float64bits(want.Quantile(q)) {
				t.Fatalf("%s: Quantile(%g) %g != %g", name, q, got.Quantile(q), want.Quantile(q))
			}
		}
		gp, wp := got.Points(100), want.Points(100)
		if len(gp) != len(wp) {
			t.Fatalf("%s: %d points, want %d", name, len(gp), len(wp))
		}
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("%s: point %d: %+v != %+v", name, i, gp[i], wp[i])
			}
		}
	}
	check("cluster", it.Cluster, wantCluster)
	check("tor", it.Tor, wantTor)
	check("server", it.Server, wantServer)
	if math.Float64bits(it.ModeMs()) != math.Float64bits(wantMode) {
		t.Fatalf("mode %g != %g", it.ModeMs(), wantMode)
	}
}
