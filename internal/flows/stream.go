package flows

import (
	"container/heap"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// StreamReassembler applies the §3 inactivity-timeout methodology to a
// record stream in canonical (Start, ID) order, emitting reassembled
// flows — also in canonical order — while holding only the flows the
// timeout horizon can still extend. A five-tuple quiet for `timeout`
// can never merge with a record at or past End+timeout, so once the
// input watermark passes that point the pending flow is final; lookback
// is bounded by the timeout, not the trace.
//
// Fed the same records, it emits exactly what Reassemble returns, in
// the same order — the equivalence the streaming analysis path's digest
// identity rests on.
type StreamReassembler struct {
	timeout netsim.Time
	emit    func(trace.FlowRecord)

	pending   map[fiveTuple]*pendingFlow
	byEnd     pendingEndHeap   // candidates for horizon finalization; lazy
	byStart   pendingStartHeap // min pending (Start, ID); lazy
	out       recordHeap       // finalized flows awaiting in-order emission
	watermark netsim.Time
}

// pendingFlow is one in-progress reassembled flow.
type pendingFlow struct {
	rec   trace.FlowRecord
	final bool
}

// NewStreamReassembler returns a reassembler delivering finished flows
// to emit. timeout <= 0 selects DefaultInactivityTimeout, mirroring
// Reassemble.
func NewStreamReassembler(timeout netsim.Time, emit func(trace.FlowRecord)) *StreamReassembler {
	if timeout <= 0 {
		timeout = DefaultInactivityTimeout
	}
	return &StreamReassembler{
		timeout: timeout,
		emit:    emit,
		pending: make(map[fiveTuple]*pendingFlow),
	}
}

// Feed consumes the next raw record. Records must arrive in
// nondecreasing Start order (the Source contract).
func (s *StreamReassembler) Feed(r trace.FlowRecord) {
	s.watermark = r.Start
	// Finalize every pending flow the horizon has passed: no future
	// record can start within timeout of its end.
	for len(s.byEnd) > 0 {
		top := s.byEnd[0]
		if top.pf.final || top.end != top.pf.rec.End {
			heap.Pop(&s.byEnd) // stale entry (flow grew or already final)
			continue
		}
		if top.end+s.timeout > s.watermark {
			break
		}
		heap.Pop(&s.byEnd)
		s.finalize(top.pf)
	}

	k := fiveTuple{r.Src, r.Dst, r.SrcPort, r.DstPort}
	if pf := s.pending[k]; pf != nil {
		if r.Start-pf.rec.End < s.timeout {
			// Same flow continues — identical merge rule to Reassemble.
			pf.rec.Bytes += r.Bytes
			if r.End > pf.rec.End {
				pf.rec.End = r.End
				heap.Push(&s.byEnd, pendingEnd{end: pf.rec.End, pf: pf})
			}
			s.drain()
			return
		}
		s.finalize(pf)
	}
	pf := &pendingFlow{rec: r}
	s.pending[k] = pf
	heap.Push(&s.byEnd, pendingEnd{end: pf.rec.End, pf: pf})
	heap.Push(&s.byStart, pf)
	s.drain()
}

// finalize moves a pending flow to the emission heap.
func (s *StreamReassembler) finalize(pf *pendingFlow) {
	if pf.final {
		return
	}
	pf.final = true
	delete(s.pending, fiveTuple{pf.rec.Src, pf.rec.Dst, pf.rec.SrcPort, pf.rec.DstPort})
	heap.Push(&s.out, pf.rec)
}

// drain emits finalized flows that can no longer be preceded: every
// pending flow and every future record orders strictly after them.
func (s *StreamReassembler) drain() {
	for len(s.out) > 0 {
		// Lazily discard finalized entries off the pending-min heap.
		for len(s.byStart) > 0 && s.byStart[0].final {
			heap.Pop(&s.byStart)
		}
		if len(s.byStart) > 0 {
			p := &s.byStart[0].rec
			t := &s.out[0]
			if p.Start < t.Start || (p.Start == t.Start && p.ID <= t.ID) {
				return
			}
		}
		s.emit(heap.Pop(&s.out).(trace.FlowRecord))
	}
}

// Close finalizes every pending flow and emits the remainder in order.
// The reassembler must not be fed after Close.
func (s *StreamReassembler) Close() {
	// Finalize through the end-heap, not the map, so the (irrelevant but
	// audited) finalization order is deterministic.
	for len(s.byEnd) > 0 {
		top := heap.Pop(&s.byEnd).(pendingEnd)
		if !top.pf.final && top.end == top.pf.rec.End {
			s.finalize(top.pf)
		}
	}
	s.drain()
}

// Pending reports the flows currently held open by the timeout horizon.
func (s *StreamReassembler) Pending() int { return len(s.pending) }

// pendingEnd is a lazy byEnd heap entry: valid only while the flow's
// End still equals end and the flow is not final.
type pendingEnd struct {
	end netsim.Time
	pf  *pendingFlow
}

type pendingEndHeap []pendingEnd

func (h pendingEndHeap) Len() int           { return len(h) }
func (h pendingEndHeap) Less(a, b int) bool { return h[a].end < h[b].end }
func (h pendingEndHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *pendingEndHeap) Push(x any)        { *h = append(*h, x.(pendingEnd)) }
func (h *pendingEndHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// pendingStartHeap orders pending flows by (Start, ID); finalized
// entries are discarded lazily at the top.
type pendingStartHeap []*pendingFlow

func (h pendingStartHeap) Len() int { return len(h) }
func (h pendingStartHeap) Less(a, b int) bool {
	if h[a].rec.Start != h[b].rec.Start {
		return h[a].rec.Start < h[b].rec.Start
	}
	return h[a].rec.ID < h[b].rec.ID
}
func (h pendingStartHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *pendingStartHeap) Push(x any)   { *h = append(*h, x.(*pendingFlow)) }
func (h *pendingStartHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// recordHeap orders finalized flows by (Start, ID) for emission.
type recordHeap []trace.FlowRecord

func (h recordHeap) Len() int { return len(h) }
func (h recordHeap) Less(a, b int) bool {
	if h[a].Start != h[b].Start {
		return h[a].Start < h[b].Start
	}
	return h[a].ID < h[b].ID
}
func (h recordHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *recordHeap) Push(x any)   { *h = append(*h, x.(trace.FlowRecord)) }
func (h *recordHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// InterArrivalTracker is the online form of Figure 11's inter-arrival
// analysis: it observes flows in canonical order and maintains the
// cluster-, ToR- and server-scope gap distributions the View-based
// functions compute offline, using per-endpoint last-start state
// instead of posting lists. Gap values are identical sample multisets
// to the offline versions (CDF queries are order-canonical), and the
// server-gap mode histogram is the same one ModeSpacing builds.
type InterArrivalTracker struct {
	top *topology.Topology

	lastServer []netsim.Time
	seenServer []bool
	lastRack   []netsim.Time
	seenRack   []bool
	lastAny    netsim.Time
	seenAny    bool

	Cluster *stats.StreamCDF
	Tor     *stats.StreamCDF
	Server  *stats.StreamCDF

	modeHist   *stats.Histogram
	serverGaps int64
}

// NewInterArrivalTracker builds a tracker whose CDFs sketch past
// cdfCap samples (0 = default cap, < 0 = exact). The mode histogram
// uses ModeSpacing's Figure 11 parameters.
func NewInterArrivalTracker(top *topology.Topology, cdfCap int) *InterArrivalTracker {
	return &InterArrivalTracker{
		top:        top,
		lastServer: make([]netsim.Time, top.NumHosts()),
		seenServer: make([]bool, top.NumHosts()),
		lastRack:   make([]netsim.Time, top.NumRacks()),
		seenRack:   make([]bool, top.NumRacks()),
		Cluster:    stats.NewStreamCDF(cdfCap),
		Tor:        stats.NewStreamCDF(cdfCap),
		Server:     stats.NewStreamCDF(cdfCap),
		modeHist:   stats.NewHistogram(2, 100, 196),
	}
}

// gapMs converts a start-time delta to milliseconds exactly as
// interArrivalsOf does.
func gapMs(d netsim.Time) float64 { return float64(d) / float64(time.Millisecond) }

// Observe consumes the next flow (nondecreasing Start). Endpoint
// visiting order matches the posting-list construction: Src always (if
// internal), Dst when distinct; rack of Src, rack of Dst when distinct.
func (it *InterArrivalTracker) Observe(r *trace.FlowRecord) {
	if it.seenAny {
		it.Cluster.Add(gapMs(r.Start - it.lastAny))
	}
	it.seenAny, it.lastAny = true, r.Start

	it.observeServer(r.Src, r.Start)
	if r.Dst != r.Src {
		it.observeServer(r.Dst, r.Start)
	}

	rs, rd := it.top.Rack(r.Src), it.top.Rack(r.Dst)
	if rs >= 0 {
		it.observeRack(rs, r.Start)
	}
	if rd >= 0 && rd != rs {
		it.observeRack(rd, r.Start)
	}
}

func (it *InterArrivalTracker) observeServer(s topology.ServerID, t netsim.Time) {
	if it.top.IsExternal(s) {
		return
	}
	if it.seenServer[s] {
		g := gapMs(t - it.lastServer[s])
		it.Server.Add(g)
		it.modeHist.Add(g)
		it.serverGaps++
	}
	it.seenServer[s] = true
	it.lastServer[s] = t
}

func (it *InterArrivalTracker) observeRack(r topology.RackID, t netsim.Time) {
	if it.seenRack[r] {
		it.Tor.Add(gapMs(t - it.lastRack[r]))
	}
	it.seenRack[r] = true
	it.lastRack[r] = t
}

// ModeMs reports the dominant server-gap spacing, matching
// ModeSpacing(serverGaps, 2, 100, 196).
func (it *InterArrivalTracker) ModeMs() float64 {
	if it.serverGaps == 0 {
		return 0
	}
	return histogramMode(it.modeHist)
}

// histogramMode returns the most populated bin's center (first maximum
// wins), or 0 for an empty histogram — ModeSpacing's selection rule.
func histogramMode(h *stats.Histogram) float64 {
	best, bestCount := 0, 0.0
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if bestCount == 0 {
		return 0
	}
	return h.BinCenter(best)
}
