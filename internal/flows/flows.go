// Package flows implements the microscopic flow-level analyses of §4.3:
// flow reconstruction with an inactivity timeout, duration distributions
// weighted by flows and by bytes (Figure 9), rate distributions
// (Figure 7), and inter-arrival distributions at cluster, ToR and server
// scope (Figure 11).
package flows

import (
	"sort"
	"time"

	"dctraffic/internal/det"
	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// DefaultInactivityTimeout is the paper's flow boundary: when explicit
// begins and ends are unavailable, a five-tuple quiet for this long ends
// the flow.
const DefaultInactivityTimeout = 60 * time.Second

// fiveTuple keys a flow. The protocol is constant (TCP) in this model.
type fiveTuple struct {
	src, dst         topology.ServerID
	srcPort, dstPort uint16
}

// Reassemble applies the inactivity-timeout methodology (§3) to a record
// stream: records sharing a five-tuple whose gap is shorter than timeout
// merge into one flow; a longer silence starts a new flow. Pass
// timeout <= 0 for DefaultInactivityTimeout. The input is not modified;
// output is ordered by start time.
func Reassemble(records []trace.FlowRecord, timeout netsim.Time) []trace.FlowRecord {
	if timeout <= 0 {
		timeout = DefaultInactivityTimeout
	}
	byTuple := make(map[fiveTuple][]trace.FlowRecord)
	for _, r := range records {
		k := fiveTuple{r.Src, r.Dst, r.SrcPort, r.DstPort}
		byTuple[k] = append(byTuple[k], r)
	}
	var out []trace.FlowRecord
	for _, rs := range byTuple {
		// (Start, ID) order — the canonical trace order — so batch and
		// streaming reassembly see identical per-tuple sequences even
		// when records of one tuple tie on Start.
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].Start != rs[j].Start {
				return rs[i].Start < rs[j].Start
			}
			return rs[i].ID < rs[j].ID
		})
		cur := rs[0]
		for _, r := range rs[1:] {
			if r.Start-cur.End < timeout {
				// Same flow continues.
				cur.Bytes += r.Bytes
				if r.End > cur.End {
					cur.End = r.End
				}
				continue
			}
			out = append(out, cur)
			cur = r
		}
		out = append(out, cur)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// DurationCDFs builds Figure 9: the CDF of flow durations (seconds)
// counted per flow and weighted by bytes.
func DurationCDFs(records []trace.FlowRecord) (byFlows, byBytes *stats.CDF) {
	byFlows, byBytes = &stats.CDF{}, &stats.CDF{}
	byFlows.Grow(len(records))
	byBytes.Grow(len(records))
	for _, r := range records {
		d := r.Duration().Seconds()
		byFlows.Add(d)
		byBytes.AddWeighted(d, float64(r.Bytes))
	}
	return byFlows, byBytes
}

// SizeCDF builds the flow-size distribution (bytes). The paper's
// conclusion notes the absence of "super large flows": sizes are bounded
// by the block store's chunking, so the tail ends near the extent size
// rather than stretching into wide-area-style elephants.
func SizeCDF(records []trace.FlowRecord) *stats.CDF {
	c := &stats.CDF{}
	c.Grow(len(records))
	for _, r := range records {
		c.Add(float64(r.Bytes))
	}
	return c
}

// MaxFlowBytes reports the largest single flow observed.
func MaxFlowBytes(records []trace.FlowRecord) int64 {
	var max int64
	for _, r := range records {
		if r.Bytes > max {
			max = r.Bytes
		}
	}
	return max
}

// RateCDF builds the flow-rate distribution (Mbps) of Figure 7. Records
// with zero duration are skipped (no meaningful rate).
func RateCDF(records []trace.FlowRecord) *stats.CDF {
	c := &stats.CDF{}
	c.Grow(len(records))
	for _, r := range records {
		if rate := r.AvgRateBps(); rate > 0 {
			c.Add(rate / 1e6)
		}
	}
	return c
}

// interArrivalsOf computes successive gaps (milliseconds) of a sorted
// start-time sequence.
func interArrivalsOf(starts []netsim.Time) []float64 {
	if len(starts) < 2 {
		return nil
	}
	out := make([]float64, 0, len(starts)-1)
	for i := 1; i < len(starts); i++ {
		out = append(out, float64(starts[i]-starts[i-1])/float64(time.Millisecond))
	}
	return out
}

// ClusterInterArrivals returns the gaps (ms) between successive flow
// arrivals anywhere in the cluster — Figure 11's "all flows" curve.
func ClusterInterArrivals(records []trace.FlowRecord) []float64 {
	starts := make([]netsim.Time, len(records))
	for i, r := range records {
		starts[i] = r.Start
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return interArrivalsOf(starts)
}

// ServerInterArrivals returns gaps (ms) between successive flows from/to
// each cluster server, pooled over servers — Figure 11's server curve.
func ServerInterArrivals(records []trace.FlowRecord, top *topology.Topology) []float64 {
	perServer := make(map[topology.ServerID][]netsim.Time)
	add := func(s topology.ServerID, t netsim.Time) {
		if !top.IsExternal(s) {
			perServer[s] = append(perServer[s], t)
		}
	}
	for _, r := range records {
		add(r.Src, r.Start)
		if r.Dst != r.Src {
			add(r.Dst, r.Start)
		}
	}
	// Pool per-server gap lists in server order so the slice (and every
	// digest downstream of it) does not inherit map iteration order.
	var out []float64
	for _, s := range det.SortedKeys(perServer) {
		starts := perServer[s]
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		out = append(out, interArrivalsOf(starts)...)
	}
	return out
}

// TorInterArrivals returns gaps (ms) between successive flows traversing
// each ToR switch (flows with at least one endpoint in the rack), pooled
// over ToRs — Figure 11's ToR curve.
func TorInterArrivals(records []trace.FlowRecord, top *topology.Topology) []float64 {
	perTor := make(map[topology.RackID][]netsim.Time)
	for _, r := range records {
		rs, rd := top.Rack(r.Src), top.Rack(r.Dst)
		if rs >= 0 {
			perTor[rs] = append(perTor[rs], r.Start)
		}
		if rd >= 0 && rd != rs {
			perTor[rd] = append(perTor[rd], r.Start)
		}
	}
	// Same fixed pooling order as ServerInterArrivals, per ToR.
	var out []float64
	for _, tor := range det.SortedKeys(perTor) {
		starts := perTor[tor]
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		out = append(out, interArrivalsOf(starts)...)
	}
	return out
}

// ClusterInterArrivalsView is ClusterInterArrivals over an indexed
// record view: the view's records are already start-sorted, so the gaps
// fall out of one linear pass with no sort.
func ClusterInterArrivalsView(v *trace.RecordView) []float64 {
	recs := v.Records()
	starts := make([]netsim.Time, len(recs))
	for i, r := range recs {
		starts[i] = r.Start
	}
	return interArrivalsOf(starts)
}

// ServerInterArrivalsView is ServerInterArrivals over an indexed record
// view: per-server start times come from the view's posting lists
// (already start-sorted), pooled in ascending ServerID order — the same
// fixed pooling order as the slice-based version, without the per-call
// map building and sorting.
func ServerInterArrivalsView(v *trace.RecordView) []float64 {
	var out []float64
	for s := 0; s < v.NumServers(); s++ {
		out = append(out, interArrivalsOf(v.ServerStarts(topology.ServerID(s)))...)
	}
	return out
}

// TorInterArrivalsView is TorInterArrivals over an indexed record view,
// pooling the per-rack posting lists in ascending RackID order.
func TorInterArrivalsView(v *trace.RecordView) []float64 {
	var out []float64
	for r := 0; r < v.NumRacks(); r++ {
		out = append(out, interArrivalsOf(v.RackStarts(topology.RackID(r)))...)
	}
	return out
}

// ArrivalRatePerSecView reports the mean cluster-wide flow arrival rate
// over [0, horizon), counting via the view's start index in O(log n).
func ArrivalRatePerSecView(v *trace.RecordView, horizon netsim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(v.StartedBefore(horizon)) / horizon.Seconds()
}

// ArrivalRatePerSec reports the mean cluster-wide flow arrival rate over
// [0, horizon).
func ArrivalRatePerSec(records []trace.FlowRecord, horizon netsim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	n := 0
	for _, r := range records {
		if r.Start < horizon {
			n++
		}
	}
	return float64(n) / horizon.Seconds()
}

// Summary condenses the §4.3 headline numbers for a record set.
type Summary struct {
	NumFlows int
	// FracShorterThan10s / 200s: duration CDF probes (paper: >80% <10 s,
	// <0.1% >200 s).
	FracShorterThan10s float64
	FracLongerThan200s float64
	// BytesInFlowsUnder25s: fraction of bytes carried by flows <= 25 s
	// (paper: more than half).
	BytesInFlowsUnder25s float64
	MedianDurationSec    float64
	MedianRateMbps       float64
	ArrivalRatePerSec    float64
}

// Summarize computes the Summary over [0, horizon).
func Summarize(records []trace.FlowRecord, horizon netsim.Time) Summary {
	byFlows, byBytes := DurationCDFs(records)
	rates := RateCDF(records)
	return Summary{
		NumFlows:             len(records),
		FracShorterThan10s:   byFlows.P(10),
		FracLongerThan200s:   1 - byFlows.P(200),
		BytesInFlowsUnder25s: byBytes.P(25),
		MedianDurationSec:    byFlows.Quantile(0.5),
		MedianRateMbps:       rates.Quantile(0.5),
		ArrivalRatePerSec:    ArrivalRatePerSec(records, horizon),
	}
}

// ConcurrentSeries counts the flows active in each bin of [0, horizon) —
// the "statistics on concurrent flows" companion measurements report.
// A flow is active in a bin if its lifetime intersects it.
func ConcurrentSeries(records []trace.FlowRecord, bin, horizon netsim.Time) []int {
	if bin <= 0 || horizon <= 0 {
		return nil
	}
	n := int((horizon + bin - 1) / bin)
	out := make([]int, n)
	// Sweep: +1 at start bin, -1 after end bin, prefix-sum.
	diff := make([]int, n+1)
	for _, r := range records {
		lo := int(r.Start / bin)
		hi := int(r.End / bin)
		if r.End > r.Start && r.End%bin == 0 {
			hi-- // half-open end exactly on a boundary
		}
		if lo >= n || hi < 0 {
			continue
		}
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		diff[lo]++
		diff[hi+1]--
	}
	cur := 0
	for i := 0; i < n; i++ {
		cur += diff[i]
		out[i] = cur
	}
	return out
}

// ModeSpacing estimates the dominant periodic spacing (ms) in an
// inter-arrival sample by histogramming gaps in [loMs, capMs) and
// returning the most populated bin's center — used to verify the ~15 ms
// stop-and-go modes of Figure 11. Pass loMs of a couple of milliseconds
// to skip the batch of near-simultaneous flows a single application event
// emits (connection setup, parallel pulls), which is a separate
// phenomenon from the pacing-timer modes.
func ModeSpacing(gapsMs []float64, loMs, capMs float64, bins int) float64 {
	if len(gapsMs) == 0 || bins <= 0 || capMs <= loMs {
		return 0
	}
	h := stats.NewHistogram(loMs, capMs, bins)
	for _, g := range gapsMs {
		h.Add(g)
	}
	return histogramMode(h)
}
