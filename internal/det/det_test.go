package det

import (
	"slices"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	if got := SortedKeys(m); !slices.Equal(got, []int{1, 2, 3}) {
		t.Fatalf("SortedKeys = %v, want [1 2 3]", got)
	}
	type rack int // named key types must work through the ~map constraint
	named := map[rack]float64{rack(9): 1, rack(4): 2}
	if got := SortedKeys(named); !slices.Equal(got, []rack{4, 9}) {
		t.Fatalf("SortedKeys = %v, want [4 9]", got)
	}
	if got := SortedKeys(map[string]int(nil)); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v, want empty", got)
	}
}

func TestSortedKeysStableAcrossRuns(t *testing.T) {
	m := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		m[uint64(i*2654435761)] = i
	}
	first := SortedKeys(m)
	for i := 0; i < 10; i++ {
		if !slices.Equal(SortedKeys(m), first) {
			t.Fatal("SortedKeys order varied between calls")
		}
	}
}
