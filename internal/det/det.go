// Package det holds small helpers for writing deterministic code over
// Go's intentionally order-randomized maps. Every simulation output must
// be a pure function of the seed (see DESIGN.md, "Determinism"); the
// dctlint mapiter analyzer flags map iteration feeding order-sensitive
// sinks, and iterating SortedKeys is the standard fix.
package det

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order, giving map traversal a
// fixed, run-independent order:
//
//	for _, k := range det.SortedKeys(m) {
//		acc += m[k] // deterministic accumulation order
//	}
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
