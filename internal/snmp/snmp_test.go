package snmp

import (
	"math"
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// constantRateNet runs one 1 Gbps flow for dur and returns the network.
func constantRateNet(t *testing.T, dur time.Duration) (*netsim.Network, topology.LinkID) {
	t.Helper()
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{StatsBinSize: time.Second})
	bytes := int64(125e6 * dur.Seconds()) // 1 Gbps
	net.StartFlow(0, 1, bytes, netsim.FlowTag{}, nil)
	net.RunAll()
	return net, top.ServerUplink(0)
}

func TestCollectAndReconstruct(t *testing.T) {
	net, link := constantRateNet(t, 30*time.Minute)
	cfg := Config{Interval: 5 * time.Minute, JitterFrac: 0}
	series := Collect(net.Stats(), []topology.LinkID{link}, 30*time.Minute, cfg, stats.NewRNG(1))
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	if len(s.Polls) != 6 {
		t.Fatalf("polls = %d, want 6", len(s.Polls))
	}
	// Counter grows at 125 MB/s: poll 1 at 5 min = 37.5 GB.
	want := 125e6 * 300
	if got := float64(s.Polls[0].Value); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("first poll = %v, want %v", got, want)
	}
	// Reconstruct a 10-minute window aligned between polls.
	bytes, ok := s.WindowBytes(5*time.Minute, 15*time.Minute, 64)
	if !ok {
		t.Fatal("reconstruction failed")
	}
	want = 125e6 * 600
	if math.Abs(bytes-want)/want > 0.01 {
		t.Fatalf("window bytes %v, want %v", bytes, want)
	}
}

func TestWindowInterpolation(t *testing.T) {
	net, link := constantRateNet(t, 30*time.Minute)
	series := Collect(net.Stats(), []topology.LinkID{link}, 30*time.Minute,
		Config{Interval: 5 * time.Minute}, stats.NewRNG(2))
	// A window not aligned to poll boundaries: linear interpolation keeps
	// the error small under the (true) constant rate.
	bytes, ok := series[0].WindowBytes(7*time.Minute, 13*time.Minute, 64)
	if !ok {
		t.Fatal("reconstruction failed")
	}
	want := 125e6 * 360
	if math.Abs(bytes-want)/want > 0.02 {
		t.Fatalf("interpolated window %v, want %v", bytes, want)
	}
}

func TestCounterWrap32(t *testing.T) {
	// 1 Gbps wraps a 32-bit octet counter every ~34 s; the unwrapper must
	// still reconstruct correct deltas.
	net, link := constantRateNet(t, 10*time.Minute)
	series := Collect(net.Stats(), []topology.LinkID{link}, 10*time.Minute,
		Config{Interval: 15 * time.Second, CounterBits: 32}, stats.NewRNG(3))
	s := series[0]
	// Raw values must have wrapped (some later poll smaller than an
	// earlier one).
	wrapped := false
	for i := 1; i < len(s.Polls); i++ {
		if s.Polls[i].Value < s.Polls[i-1].Value {
			wrapped = true
		}
	}
	if !wrapped {
		t.Fatal("expected 32-bit counter wrap at 1 Gbps")
	}
	bytes, ok := s.WindowBytes(time.Minute, 4*time.Minute, 32)
	if !ok {
		t.Fatal("reconstruction failed")
	}
	want := 125e6 * 180
	if math.Abs(bytes-want)/want > 0.02 {
		t.Fatalf("unwrapped window %v, want %v", bytes, want)
	}
}

func TestPollLoss(t *testing.T) {
	net, link := constantRateNet(t, 30*time.Minute)
	lossy := Collect(net.Stats(), []topology.LinkID{link}, 30*time.Minute,
		Config{Interval: time.Minute, LossProb: 0.5}, stats.NewRNG(4))
	full := Collect(net.Stats(), []topology.LinkID{link}, 30*time.Minute,
		Config{Interval: time.Minute}, stats.NewRNG(4))
	if len(lossy[0].Polls) >= len(full[0].Polls) {
		t.Fatalf("loss dropped nothing: %d vs %d", len(lossy[0].Polls), len(full[0].Polls))
	}
	// Reconstruction still works across gaps.
	if _, ok := lossy[0].WindowBytes(5*time.Minute, 20*time.Minute, 64); !ok {
		t.Fatal("reconstruction should interpolate across lost polls")
	}
}

func TestWindowBeyondPollsFails(t *testing.T) {
	net, link := constantRateNet(t, 10*time.Minute)
	series := Collect(net.Stats(), []topology.LinkID{link}, 10*time.Minute,
		Config{Interval: 5 * time.Minute}, stats.NewRNG(5))
	if _, ok := series[0].WindowBytes(8*time.Minute, 30*time.Minute, 64); ok {
		t.Fatal("window past the last poll must fail, not extrapolate")
	}
	empty := Series{}
	if _, ok := empty.WindowBytes(0, time.Minute, 64); ok {
		t.Fatal("empty series cannot reconstruct")
	}
}

func TestWindowCounts(t *testing.T) {
	net, link := constantRateNet(t, 30*time.Minute)
	series := Collect(net.Stats(), []topology.LinkID{link}, 30*time.Minute,
		Config{Interval: 5 * time.Minute}, stats.NewRNG(6))
	series = append(series, Series{Link: 999}) // no polls
	counts, missing := WindowCounts(series, 5*time.Minute, 15*time.Minute, 64)
	if len(counts) != 2 || missing != 1 {
		t.Fatalf("counts=%v missing=%d", counts, missing)
	}
	if counts[0] <= 0 || counts[1] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestJitterBounded(t *testing.T) {
	net, link := constantRateNet(t, 30*time.Minute)
	cfg := Config{Interval: 5 * time.Minute, JitterFrac: 0.1}
	series := Collect(net.Stats(), []topology.LinkID{link}, 30*time.Minute, cfg, stats.NewRNG(7))
	for i, p := range series[0].Polls {
		nominal := time.Duration(i+1) * 5 * time.Minute
		d := p.At - nominal
		if d < 0 {
			d = -d
		}
		if d > 30*time.Second+time.Millisecond {
			t.Fatalf("poll %d jitter %v exceeds 10%% of interval", i, d)
		}
	}
}
