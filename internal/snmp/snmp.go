// Package snmp models the coarse counter-based instrumentation the paper
// contrasts with its server-side tracing (§2): cumulative per-interface
// byte counters polled every few minutes, with the realities that make
// them awkward — poll misalignment against analysis windows, missed polls,
// and 32-bit counter wrap on fast links.
//
// The tomography study (§5) idealizes its input as exact per-window link
// counts; this package provides the non-idealized path: sample the
// simulator's link statistics like an NMS would, then reconstruct
// per-window counts from the polls. Comparing estimators on polled versus
// exact counts quantifies how much of tomography's failure is inherent to
// the under-constrained problem versus the counter plumbing.
package snmp

import (
	"math"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// Poll is one reading of a link's cumulative byte counter.
type Poll struct {
	At    netsim.Time
	Value uint64 // cumulative bytes, possibly wrapped
}

// Config tunes the simulated NMS.
type Config struct {
	// Interval between polls (paper: "typically once every five
	// minutes"). Default 5 minutes.
	Interval netsim.Time
	// JitterFrac smears each poll time by ±JitterFrac·Interval, modeling
	// scheduling slop in the poller. Default 0.05.
	JitterFrac float64
	// LossProb drops a poll entirely (timeout, device busy). Default 0.
	LossProb float64
	// CounterBits wraps the cumulative counter at 2^CounterBits
	// (32 for classic SNMP ifInOctets, 64 for ifHCInOctets). Default 64.
	CounterBits uint
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * 60 * 1e9
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	}
	if c.CounterBits == 0 || c.CounterBits > 64 {
		c.CounterBits = 64
	}
	return c
}

// Series is the polled history of one link.
type Series struct {
	Link  topology.LinkID
	Polls []Poll
}

// Collect polls the simulator's recorded per-bin link bytes for the given
// links over [0, horizon), producing per-link counter series. The
// simulator's bins are integrated into a cumulative counter, then sampled
// at the (jittered) poll times.
func Collect(st *netsim.LinkStats, links []topology.LinkID, horizon netsim.Time, cfg Config, rng *stats.RNG) []Series {
	cfg = cfg.withDefaults()
	var wrap uint64
	if cfg.CounterBits < 64 {
		wrap = uint64(1) << cfg.CounterBits
	}
	out := make([]Series, 0, len(links))
	for _, l := range links {
		bins := st.Bytes(l)
		binSize := st.BinSize()
		s := Series{Link: l}
		for t := cfg.Interval; t <= horizon; t += cfg.Interval {
			at := t
			if cfg.JitterFrac > 0 {
				j := (rng.Float64()*2 - 1) * cfg.JitterFrac * float64(cfg.Interval)
				at += netsim.Time(j)
				if at < 0 {
					at = 0
				}
				if at > horizon {
					at = horizon
				}
			}
			if cfg.LossProb > 0 && rng.Bool(cfg.LossProb) {
				continue
			}
			cum := cumulativeAt(bins, binSize, at)
			v := uint64(cum)
			if wrap > 0 {
				v %= wrap
			}
			s.Polls = append(s.Polls, Poll{At: at, Value: v})
		}
		out = append(out, s)
	}
	return out
}

// cumulativeAt integrates the per-bin byte series up to time t, assuming
// a uniform rate within the partially-covered bin.
func cumulativeAt(bins []float64, binSize netsim.Time, t netsim.Time) float64 {
	full := int(t / binSize)
	var cum float64
	for i := 0; i < full && i < len(bins); i++ {
		cum += bins[i]
	}
	if full < len(bins) {
		frac := float64(t%binSize) / float64(binSize)
		cum += bins[full] * frac
	}
	return cum
}

// WindowBytes reconstructs the bytes a link carried during [from, to) from
// its poll series: the counter delta between the interpolated values at
// the window edges, handling counter wrap. It reports ok=false when the
// series has no polls bracketing the window (reconstruction impossible).
func (s Series) WindowBytes(from, to netsim.Time, counterBits uint) (bytes float64, ok bool) {
	if counterBits == 0 || counterBits > 64 {
		counterBits = 64
	}
	a, okA := s.valueAt(from, counterBits)
	b, okB := s.valueAt(to, counterBits)
	if !okA || !okB || b < a {
		return 0, false
	}
	return b - a, true
}

// valueAt linearly interpolates the unwrapped counter at time t.
func (s Series) valueAt(t netsim.Time, counterBits uint) (float64, bool) {
	if len(s.Polls) == 0 {
		return 0, false
	}
	// Unwrap the counter sequence.
	var wrapVal float64
	if counterBits < 64 {
		wrapVal = math.Pow(2, float64(counterBits))
	}
	unwrapped := make([]float64, len(s.Polls))
	var offset float64
	prev := float64(s.Polls[0].Value)
	unwrapped[0] = prev
	for i := 1; i < len(s.Polls); i++ {
		v := float64(s.Polls[i].Value)
		if wrapVal > 0 && v < prev {
			offset += wrapVal
		}
		prev = v
		unwrapped[i] = v + offset
	}
	// Before the first poll: assume the counter started at 0 at time 0.
	if t <= s.Polls[0].At {
		if s.Polls[0].At == 0 {
			return unwrapped[0], true
		}
		frac := float64(t) / float64(s.Polls[0].At)
		return unwrapped[0] * frac, true
	}
	for i := 1; i < len(s.Polls); i++ {
		if t <= s.Polls[i].At {
			span := float64(s.Polls[i].At - s.Polls[i-1].At)
			if span == 0 {
				return unwrapped[i], true
			}
			frac := float64(t-s.Polls[i-1].At) / span
			return unwrapped[i-1] + frac*(unwrapped[i]-unwrapped[i-1]), true
		}
	}
	// Past the last poll: cannot extrapolate reliably.
	return 0, false
}

// WindowCounts reconstructs per-link byte counts for [from, to) across a
// set of series, in series order; links whose reconstruction failed get 0
// and are reported in the second return.
func WindowCounts(series []Series, from, to netsim.Time, counterBits uint) (counts []float64, missing int) {
	counts = make([]float64, len(series))
	for i, s := range series {
		v, ok := s.WindowBytes(from, to, counterBits)
		if !ok {
			missing++
			continue
		}
		counts[i] = v
	}
	return counts, missing
}
