package replay

import (
	"math"
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

func sampleTrace() []trace.FlowRecord {
	var out []trace.FlowRecord
	// 5 simultaneous cross-rack transfers from rack 0 to rack 2.
	for i := 0; i < 5; i++ {
		out = append(out, trace.FlowRecord{
			ID:  netsim.FlowID(i),
			Src: topology.ServerID(i), Dst: topology.ServerID(20 + i),
			Bytes: 312_500_000, // 2.5 Gb each
			Start: 0, End: 5 * time.Second,
		})
	}
	return out
}

func TestReplayBasic(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	res, err := Run(sampleTrace(), top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 || res.Unplaceable != 0 {
		t.Fatalf("records=%d unplaceable=%d", len(res.Records), res.Unplaceable)
	}
	// 5 × 2.5 Gb through the 2.5 Gbps ToR uplink: 0.5 Gbps each → 5 s.
	for _, r := range res.Records {
		if d := r.Duration(); d < 4900*time.Millisecond || d > 5100*time.Millisecond {
			t.Fatalf("replayed duration %v, want ~5s", d)
		}
	}
}

func TestReplayFasterFabric(t *testing.T) {
	original := sampleTrace() // measured on the tree: 5 s each
	// Target fabric: double the ToR uplink — flows should finish ~2× faster.
	cfg := topology.SmallConfig()
	cfg.TorUplinkBps *= 2
	fast := topology.MustNew(cfg)
	res, err := Run(original, fast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow := MeanSlowdown(original, res.Records)
	if slow <= 0 {
		t.Fatal("no matched flows")
	}
	if math.Abs(slow-0.5) > 0.05 {
		t.Fatalf("mean slowdown %v, want ~0.5 on a 2x fabric", slow)
	}
}

func TestReplayUnplaceable(t *testing.T) {
	tiny := topology.MustNew(topology.Config{
		Racks: 1, ServersPerRack: 2, AggSwitches: 1,
		ServerLinkBps: 1e9, TorUplinkBps: 1e9, AggUplinkBps: 1e9,
	})
	res, err := Run(sampleTrace(), tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unplaceable != 5 {
		t.Fatalf("unplaceable = %d, want 5", res.Unplaceable)
	}
	if _, err := Run(nil, nil, Options{}); err == nil {
		t.Fatal("nil topology must error")
	}
}

func TestMeanSlowdownUnmatched(t *testing.T) {
	if got := MeanSlowdown(sampleTrace(), nil); got != 0 {
		t.Fatalf("unmatched slowdown = %v, want 0", got)
	}
}
