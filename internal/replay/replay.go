// Package replay re-executes a recorded flow trace on a (possibly
// different) fabric: each recorded flow is started at its original time
// with its original endpoints and size, but rates and completion times
// emerge from the new topology's capacities and sharing. This answers
// "what would this exact offered load have done on fabric X" — the
// architecture-evaluation workflow the paper motivates — without
// re-running the workload model.
//
// Replay is open-loop: recorded start times are respected even where the
// original run's congestion had delayed downstream work, so a faster
// fabric shows shorter completions rather than a reshaped arrival
// process. That is the standard trace-replay trade-off; closed-loop
// what-ifs need the full simulator (internal/core).
package replay

import (
	"fmt"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// Options tunes a replay.
type Options struct {
	// Net options for the target fabric (stats bins, batching).
	Net netsim.Options
	// Horizon extends the run past the last recorded start so flows can
	// finish; default 10 minutes.
	Horizon netsim.Time
}

// Result is the outcome of a replay.
type Result struct {
	Net *netsim.Network
	// Records are the re-measured flows on the new fabric.
	Records []trace.FlowRecord
	// Unplaceable counts input records whose endpoints do not exist on
	// the target topology (skipped).
	Unplaceable int
}

// Run replays records on a fresh network over top. Records are replayed
// in their original start order; bytes of zero-length records are
// preserved.
func Run(records []trace.FlowRecord, top *topology.Topology, opts Options) (*Result, error) {
	if top == nil {
		return nil, fmt.Errorf("replay: nil topology")
	}
	net := netsim.New(top, opts.Net)
	collector := trace.NewCollector(top, trace.Config{})
	net.AddObserver(collector)
	res := &Result{Net: net}
	var last netsim.Time
	hosts := top.NumHosts()
	for _, r := range records {
		if int(r.Src) >= hosts || int(r.Dst) >= hosts || r.Src < 0 || r.Dst < 0 {
			res.Unplaceable++
			continue
		}
		r := r
		net.Schedule(r.Start, func() {
			net.StartFlow(r.Src, r.Dst, r.Bytes, r.Tag, nil)
		})
		if r.Start > last {
			last = r.Start
		}
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 10 * 60 * 1e9
	}
	net.Run(last + horizon)
	net.Flush()
	res.Records = collector.Records()
	return res, nil
}

// Slowdowns compares replayed flow durations against the originals,
// matched by start time, endpoints and size, returning the per-flow
// replayed/original duration ratios. A ratio below 1 means the target
// fabric moved that flow faster. Note that sub-millisecond mice are
// sensitive to the replay network's rate-recompute batching; use exact
// recomputation (Options.Net.MinRecomputeInterval == 0) when mice matter.
func Slowdowns(original, replayed []trace.FlowRecord) []float64 {
	type key struct {
		src, dst topology.ServerID
		start    netsim.Time
		bytes    int64
	}
	orig := make(map[key]netsim.Time, len(original))
	for _, r := range original {
		orig[key{r.Src, r.Dst, r.Start, r.Bytes}] = r.Duration()
	}
	var out []float64
	for _, r := range replayed {
		od, ok := orig[key{r.Src, r.Dst, r.Start, r.Bytes}]
		if !ok || od <= 0 || r.Duration() <= 0 {
			continue
		}
		out = append(out, r.Duration().Seconds()/od.Seconds())
	}
	return out
}

// MeanSlowdown is the mean of Slowdowns (0 when nothing matched).
func MeanSlowdown(original, replayed []trace.FlowRecord) float64 {
	return stats.Mean(Slowdowns(original, replayed))
}

// MedianSlowdown is the median of Slowdowns (0 when nothing matched),
// robust to the tiny-flow tail.
func MedianSlowdown(original, replayed []trace.FlowRecord) float64 {
	return stats.Median(Slowdowns(original, replayed))
}
