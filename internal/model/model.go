// Package model is the paper's deliverable for network designers: a
// parametric generative model of datacenter traffic matching the
// macroscopic characterization of §4.1 (Figures 2–4), usable to simulate
// "such traffic" without running a full cluster simulation.
//
// The model captures:
//
//   - Work-seeks-bandwidth: per-server within-rack correspondence is
//     bimodal — a server either talks to almost all of its rack or to a
//     small subset (Figure 4 left) — and within-rack pairs exchange more
//     bytes than cross-rack pairs (Figure 3).
//   - Scatter-gather: a few servers per window push to (or pull from)
//     servers spread across many racks (the rows/columns of Figure 2).
//   - Sparsity: most server pairs exchange nothing — the paper reports
//     ≈89% of same-rack pairs and ≈99.5% of cross-rack pairs are silent.
//   - External ingest/egress at the matrix fringe.
//
// Parameters can be fitted from any measured server-level TM (Fit), so the
// model doubles as a compact summary of a trace.
package model

import (
	"math"
	"sort"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// Params is the generative model. All probabilities are per window.
type Params struct {
	Racks          int
	ServersPerRack int
	ExternalHosts  int

	// Within-rack correspondence mixture (Figure 4 left).
	PChattyWithinRack float64 // fraction of servers talking to ~all rack peers
	ChattyWithinFrac  float64 // peer fraction for chatty servers
	QuietWithinFrac   float64 // peer fraction for the rest

	// Across-rack correspondence (Figure 4 right).
	PSilentAcrossRack float64 // servers with no cross-rack peers
	AcrossFracLo      float64 // active servers talk to Uniform[lo, hi]
	AcrossFracHi      float64 // of out-of-rack servers

	// Entry volumes (Figure 3): non-zero pair bytes per window.
	WithinBytes stats.Lognormal
	AcrossBytes stats.Lognormal

	// Scatter-gather events (Figure 2's rows and columns).
	ScattersPerWindow float64 // Poisson mean
	ScatterFanoutFrac float64 // fraction of cluster servers touched
	ScatterBytes      stats.Lognormal

	// External traffic (Figure 2's far corner).
	ExternalPairsPerWindow float64
	ExternalBytes          stats.Lognormal

	// Window is the TM timescale the parameters describe.
	Window netsim.Time
}

// ClusterShape names the dimensions of a simulated cluster — the three
// numbers that parameterize the generative model. A named struct
// replaces the old positional-int signature (racks, servers, hosts are
// all ints; call sites were unreadable and transposable).
type ClusterShape struct {
	Racks          int
	ServersPerRack int
	ExternalHosts  int
}

// Servers reports the cluster server count.
func (s ClusterShape) Servers() int { return s.Racks * s.ServersPerRack }

// PaperDefaults returns parameters hand-tuned to reproduce the paper's
// reported statistics at the given cluster shape.
//
// Deprecated: use PaperDefaultsFor with a ClusterShape.
func PaperDefaults(racks, serversPerRack, externalHosts int) Params {
	return PaperDefaultsFor(ClusterShape{
		Racks:          racks,
		ServersPerRack: serversPerRack,
		ExternalHosts:  externalHosts,
	})
}

// PaperDefaultsFor returns parameters hand-tuned to reproduce the paper's
// reported statistics at the given cluster shape: ~89%/99.5% silent pairs,
// median ≈2 within-rack and ≈4 cross-rack correspondents, non-zero entries
// spanning loge(Bytes) ∈ [4, 20] with within-rack entries larger.
func PaperDefaultsFor(shape ClusterShape) Params {
	racks, serversPerRack, externalHosts := shape.Racks, shape.ServersPerRack, shape.ExternalHosts
	return Params{
		Racks:          racks,
		ServersPerRack: serversPerRack,
		ExternalHosts:  externalHosts,

		PChattyWithinRack: 0.06,
		ChattyWithinFrac:  0.92,
		QuietWithinFrac:   0.075,

		PSilentAcrossRack: 0.45,
		AcrossFracLo:      0.003,
		AcrossFracHi:      0.03,

		WithinBytes: stats.Lognormal{Mu: 12.5, Sigma: 2.6},
		AcrossBytes: stats.Lognormal{Mu: 10.5, Sigma: 2.4},

		ScattersPerWindow: float64(racks*serversPerRack) * 0.005,
		ScatterFanoutFrac: 0.15,
		ScatterBytes:      stats.Lognormal{Mu: 11, Sigma: 1.5},

		ExternalPairsPerWindow: float64(externalHosts) * 1.5,
		ExternalBytes:          stats.Lognormal{Mu: 13, Sigma: 1.8},

		Window: 10e9, // 10 s
	}
}

// numServers is the cluster server count.
func (p Params) numServers() int { return p.Racks * p.ServersPerRack }

// scatterEvent is one scatter-gather hub for a window.
type scatterEvent struct {
	hub  int
	push bool
}

// sampleActive draws the window's cross-rack-active server set.
func (p Params) sampleActive(rng *stats.RNG) []int {
	var active []int
	for s := 0; s < p.numServers(); s++ {
		if !rng.Bool(p.PSilentAcrossRack) {
			active = append(active, s)
		}
	}
	return active
}

// sampleHubs draws the window's scatter-gather events over the active set.
func (p Params) sampleHubs(rng *stats.RNG, active []int) []scatterEvent {
	events := stats.Poisson(rng, p.ScattersPerWindow)
	out := make([]scatterEvent, 0, events)
	for e := 0; e < events && len(active) > 0; e++ {
		out = append(out, scatterEvent{
			hub:  active[rng.IntN(len(active))],
			push: rng.Bool(0.5),
		})
	}
	return out
}

// GenerateTM draws one server-level traffic matrix (hosts = servers +
// externals) for a window, with fresh activity each call. For correlated
// sequences of windows use NewSeriesGen.
func (p Params) GenerateTM(rng *stats.RNG) *tm.Matrix {
	active := p.sampleActive(rng)
	return p.generateWith(rng, active, p.sampleHubs(rng, active))
}

// generateWith draws one TM for a given active set and hub list.
func (p Params) generateWith(rng *stats.RNG, active []int, hubs []scatterEvent) *tm.Matrix {
	n := p.numServers()
	m := tm.NewMatrix(n + p.ExternalHosts)
	perRack := p.ServersPerRack

	// Within-rack structure.
	for s := 0; s < n; s++ {
		rackBase := (s / perRack) * perRack
		frac := p.QuietWithinFrac
		if rng.Bool(p.PChattyWithinRack) {
			frac = p.ChattyWithinFrac
		}
		for o := 0; o < perRack; o++ {
			d := rackBase + o
			if d == s || !rng.Bool(frac) {
				continue
			}
			m.Add(s, d, p.WithinBytes.Sample(rng))
		}
	}

	// Across-rack structure over the active set (Figure 4's zero-spike:
	// silent servers neither initiate nor receive this window).
	out := n - perRack
	if out > 0 && len(active) > 1 {
		for _, s := range active {
			frac := p.AcrossFracLo + rng.Float64()*(p.AcrossFracHi-p.AcrossFracLo)
			k := int(frac * float64(out))
			if k < 1 {
				k = 1
			}
			rackBase := (s / perRack) * perRack
			for i := 0; i < k; i++ {
				d := active[rng.IntN(len(active))]
				if d == s || (d >= rackBase && d < rackBase+perRack) {
					continue // own rack; thinning keeps E[k] right
				}
				m.Add(s, d, p.AcrossBytes.Sample(rng))
			}
		}
	}

	// Scatter-gather rows/columns over the active set.
	fan := int(p.ScatterFanoutFrac * float64(n))
	if fan < 2 {
		fan = 2
	}
	for _, ev := range hubs {
		if len(active) < 2 {
			break
		}
		for i := 0; i < fan; i++ {
			peer := active[rng.IntN(len(active))]
			if peer == ev.hub {
				continue
			}
			b := p.ScatterBytes.Sample(rng)
			if ev.push {
				m.Add(ev.hub, peer, b)
			} else {
				m.Add(peer, ev.hub, b)
			}
		}
	}

	// External fringe.
	pairs := stats.Poisson(rng, p.ExternalPairsPerWindow)
	for e := 0; e < pairs && p.ExternalHosts > 0; e++ {
		ext := n + rng.IntN(p.ExternalHosts)
		srv := rng.IntN(n)
		b := p.ExternalBytes.Sample(rng)
		if rng.Bool(0.5) {
			m.Add(ext, srv, b) // ingest
		} else {
			m.Add(srv, ext, b) // egress
		}
	}
	return m
}

// FlowShape controls how GenerateFlows decomposes TM entries into flows.
type FlowShape struct {
	// FlowBytes sizes individual flows (chunking); default bounded Pareto
	// 64 KB .. 256 MB with α=1.2 — most flows small, bytes in the tail.
	FlowBytes stats.Dist
	// RateBps draws a flow's throughput; duration = bytes·8/rate, capped
	// at the window. Default lognormal around 50 Mbps.
	RateBps stats.Dist
}

// DefaultFlowShape returns the §4.3-flavored defaults.
func DefaultFlowShape() FlowShape {
	return FlowShape{
		FlowBytes: stats.Pareto{Xm: 64 << 10, Alpha: 1.2, Max: 256 << 20},
		RateBps:   stats.Lognormal{Mu: math.Log(50e6), Sigma: 1.2},
	}
}

// GenerateFlows expands a window TM into flow records: each pair's bytes
// are cut into chunk-sized flows with random starts inside the window.
// Flow IDs are assigned sequentially from firstID.
func (p Params) GenerateFlows(rng *stats.RNG, m *tm.Matrix, shape FlowShape, windowStart netsim.Time, firstID int64) []trace.FlowRecord {
	if shape.FlowBytes == nil {
		shape = DefaultFlowShape()
	}
	var out []trace.FlowRecord
	id := firstID
	var port uint16 = 1024
	m.ForEach(func(src, dst int, bytes float64) {
		for remaining := bytes; remaining > 0.5; {
			fb := shape.FlowBytes.Sample(rng)
			if fb > remaining {
				fb = remaining
			}
			remaining -= fb
			rate := shape.RateBps.Sample(rng)
			dur := netsim.Time(fb * 8 / rate * 1e9)
			if dur > p.Window {
				dur = p.Window
			}
			if dur < 1 {
				dur = 1
			}
			startOff := netsim.Time(rng.Int64N(int64(p.Window - dur + 1)))
			port++
			if port < 1024 {
				port = 1024
			}
			out = append(out, trace.FlowRecord{
				ID:      netsim.FlowID(id),
				Src:     topology.ServerID(src),
				Dst:     topology.ServerID(dst),
				SrcPort: port,
				DstPort: 443,
				Start:   windowStart + startOff,
				End:     windowStart + startOff + dur,
				Bytes:   int64(fb),
			})
			id++
		}
	})
	return out
}

// Fit estimates model parameters from a measured server-level TM over one
// window. The scatter and external components are estimated from the
// pattern summary; entry distributions from log-moments.
func Fit(m *tm.Matrix, top *topology.Topology, window netsim.Time) Params {
	cfg := top.Config()
	p := Params{
		Racks:          cfg.Racks,
		ServersPerRack: cfg.ServersPerRack,
		ExternalHosts:  cfg.ExternalHosts,
		Window:         window,
	}
	es := tm.ComputeEntryStats(m, top)
	p.WithinBytes = fitLognormal(es.WithinRack, stats.Lognormal{Mu: 12, Sigma: 2.5})
	p.AcrossBytes = fitLognormal(es.AcrossRack, stats.Lognormal{Mu: 10, Sigma: 2.5})

	cs := tm.ComputeCorrespondents(m, top)
	var chatty, quiet []float64
	silentAcross := 0
	var acrossActive []float64
	for i := range cs.FracWithin {
		if cs.FracWithin[i] > 0.5 {
			chatty = append(chatty, cs.FracWithin[i])
		} else {
			quiet = append(quiet, cs.FracWithin[i])
		}
		if cs.FracAcross[i] == 0 {
			silentAcross++
		} else {
			acrossActive = append(acrossActive, cs.FracAcross[i])
		}
	}
	n := top.NumServers()
	p.PChattyWithinRack = float64(len(chatty)) / float64(n)
	p.ChattyWithinFrac = defaultIfZero(stats.Mean(chatty), 0.9)
	p.QuietWithinFrac = defaultIfZero(stats.Mean(quiet), 0.05)
	p.PSilentAcrossRack = float64(silentAcross) / float64(n)
	p.AcrossFracLo = defaultIfZero(stats.Percentile(acrossActive, 10), 0.005)
	p.AcrossFracHi = defaultIfZero(stats.Percentile(acrossActive, 90), 0.05)

	ps := tm.SummarizePatterns(m, top)
	p.ScattersPerWindow = float64(ps.ScatterGatherRows) * 0.25 // hubs persist across windows
	p.ScatterFanoutFrac = 0.25
	p.ScatterBytes = p.AcrossBytes
	// External pair rate from the fringe volume and its mean entry size.
	extMean := p.AcrossBytes.Mean()
	if extMean > 0 {
		p.ExternalPairsPerWindow = ps.ExternalFraction * m.Total() / extMean
	}
	p.ExternalBytes = p.AcrossBytes
	p.calibrateVolume(m.Total())
	return p
}

// ExpectedTotal approximates the mean bytes one generated window carries.
func (p Params) ExpectedTotal() float64 {
	n := float64(p.numServers())
	perRack := float64(p.ServersPerRack)
	withinActive := p.PChattyWithinRack*p.ChattyWithinFrac + (1-p.PChattyWithinRack)*p.QuietWithinFrac
	within := n * withinActive * (perRack - 1) * p.WithinBytes.Mean()
	meanFrac := (p.AcrossFracLo + p.AcrossFracHi) / 2
	across := n * (1 - p.PSilentAcrossRack) * meanFrac * (n - perRack) * p.AcrossBytes.Mean()
	fan := p.ScatterFanoutFrac * n
	scatter := p.ScattersPerWindow * fan * p.ScatterBytes.Mean()
	external := p.ExternalPairsPerWindow * p.ExternalBytes.Mean()
	return within + across + scatter + external
}

// calibrateVolume shifts the byte distributions so the expected generated
// volume matches the target — fitting entry sizes and event rates
// independently would otherwise double-count scatter volume (scatter
// entries were also counted in the entry-size histograms).
func (p *Params) calibrateVolume(target float64) {
	if target <= 0 {
		return
	}
	expected := p.ExpectedTotal()
	if expected <= 0 {
		return
	}
	shift := math.Log(target / expected)
	p.WithinBytes.Mu += shift
	p.AcrossBytes.Mu += shift
	p.ScatterBytes.Mu += shift
	p.ExternalBytes.Mu += shift
}

// fitLognormal estimates (Mu, Sigma) from positive samples by log-moments,
// falling back to fallback for degenerate inputs.
func fitLognormal(samples []float64, fallback stats.Lognormal) stats.Lognormal {
	var logs []float64
	for _, v := range samples {
		if v > 0 {
			logs = append(logs, math.Log(v))
		}
	}
	if len(logs) < 2 {
		return fallback
	}
	sigma := stats.StdDev(logs)
	if sigma <= 0 {
		sigma = 0.1
	}
	return stats.Lognormal{Mu: stats.Mean(logs), Sigma: sigma}
}

func defaultIfZero(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// SeriesGen produces a correlated sequence of window TMs reproducing
// Figure 10's behaviour: the TM changes substantially window to window
// (participants churn), yet consecutive windows share most of their
// conversations because jobs span many windows. Each step keeps a
// conversation (pair entry) with probability 1−ActiveChurn, jittering its
// volume, and replaces the churned share with fresh activity.
type SeriesGen struct {
	p    Params
	rng  *stats.RNG
	prev *tm.Matrix

	// ActiveChurn is the fraction of conversations replaced per window
	// (default 0.3); the median normalized change grows with it.
	ActiveChurn float64
	// VolumeJitter is the lognormal sigma applied to surviving
	// conversations' volumes each window (default 0.3).
	VolumeJitter float64
}

// NewSeriesGen starts a correlated TM sequence.
func (p Params) NewSeriesGen(rng *stats.RNG) *SeriesGen {
	return &SeriesGen{p: p, rng: rng, ActiveChurn: 0.3, VolumeJitter: 0.3}
}

// entry is a flattened TM cell, used for deterministic iteration.
type entry struct {
	src, dst int
	bytes    float64
}

// sortedEntries flattens a TM in (src, dst) order so per-entry coin flips
// are reproducible (map iteration order is not).
func sortedEntries(m *tm.Matrix) []entry {
	var out []entry
	m.ForEach(func(s, d int, b float64) {
		out = append(out, entry{s, d, b})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].src != out[j].src {
			return out[i].src < out[j].src
		}
		return out[i].dst < out[j].dst
	})
	return out
}

// Next draws the next window's TM.
func (g *SeriesGen) Next() *tm.Matrix {
	if g.prev == nil {
		g.prev = g.p.GenerateTM(g.rng)
		return g.prev
	}
	next := tm.NewMatrix(g.prev.N())
	jitter := stats.Lognormal{Mu: 0, Sigma: g.VolumeJitter}
	for _, e := range sortedEntries(g.prev) {
		if g.rng.Bool(g.ActiveChurn) {
			continue // conversation ended
		}
		next.Add(e.src, e.dst, e.bytes*jitter.Sample(g.rng))
	}
	// Fresh activity replaces the churned share.
	fresh := g.p.GenerateTM(g.rng)
	for _, e := range sortedEntries(fresh) {
		if g.rng.Bool(g.ActiveChurn) {
			next.Add(e.src, e.dst, e.bytes)
		}
	}
	g.prev = next
	return next
}
