package model

import (
	"math"
	"testing"
	"time"

	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
)

// paperTop mirrors the paper-scale shape at reduced size for fast tests.
func paperTop() *topology.Topology {
	cfg := topology.Config{
		Racks: 20, ServersPerRack: 20, AggSwitches: 2, RacksPerVLAN: 5,
		ExternalHosts: 10, ServerLinkBps: 1e9, TorUplinkBps: 5e9,
		AggUplinkBps: 40e9, ExtLinkBps: 1e9,
	}
	return topology.MustNew(cfg)
}

func TestGenerateTMSparsity(t *testing.T) {
	top := paperTop()
	p := PaperDefaults(20, 20, 10)
	rng := stats.NewRNG(1)
	// Average the statistics over several windows.
	var zeroWithin, zeroAcross float64
	const trials = 10
	for i := 0; i < trials; i++ {
		m := p.GenerateTM(rng)
		es := tm.ComputeEntryStats(m, top)
		zeroWithin += es.PZeroWithinRack
		zeroAcross += es.PZeroAcrossRack
	}
	zeroWithin /= trials
	zeroAcross /= trials
	// Paper: ≈89% within, ≈99.5% across. Allow generous tolerance.
	if zeroWithin < 0.80 || zeroWithin > 0.95 {
		t.Fatalf("P(zero|within rack) = %v, want ~0.89", zeroWithin)
	}
	if zeroAcross < 0.97 {
		t.Fatalf("P(zero|across racks) = %v, want ~0.995", zeroAcross)
	}
	if zeroAcross <= zeroWithin {
		t.Fatal("cross-rack pairs must be more often silent than in-rack pairs")
	}
}

func TestGenerateTMCorrespondents(t *testing.T) {
	top := paperTop()
	p := PaperDefaults(20, 20, 10)
	rng := stats.NewRNG(2)
	var medWithin, medAcross float64
	const trials = 8
	for i := 0; i < trials; i++ {
		m := p.GenerateTM(rng)
		cs := tm.ComputeCorrespondents(m, top)
		medWithin += cs.MedianWithinCount
		medAcross += cs.MedianAcrossCount
	}
	medWithin /= trials
	medAcross /= trials
	// Paper medians: 2 within, 4 outside (generous band).
	if medWithin < 1 || medWithin > 5 {
		t.Fatalf("median within-rack correspondents = %v, want ~2", medWithin)
	}
	if medAcross < 2 || medAcross > 10 {
		t.Fatalf("median cross-rack correspondents = %v, want ~4", medAcross)
	}
}

func TestGenerateTMEntryMagnitudes(t *testing.T) {
	top := paperTop()
	p := PaperDefaults(20, 20, 10)
	m := p.GenerateTM(stats.NewRNG(3))
	es := tm.ComputeEntryStats(m, top)
	if len(es.WithinRack) == 0 || len(es.AcrossRack) == 0 {
		t.Fatal("no entries generated")
	}
	// Within-rack entries are bigger on median (paper: "server pairs
	// within the same rack more likely to exchange more bytes").
	if stats.Median(es.WithinRack) <= stats.Median(es.AcrossRack) {
		t.Fatalf("within median %v <= across median %v",
			stats.Median(es.WithinRack), stats.Median(es.AcrossRack))
	}
	// Entries should span a wide loge range like [e^4, e^20].
	all := append(append([]float64{}, es.WithinRack...), es.AcrossRack...)
	lo, hi := math.Log(stats.Min(all)), math.Log(stats.Max(all))
	if hi-lo < 8 {
		t.Fatalf("entry range too narrow: loge in [%v, %v]", lo, hi)
	}
}

func TestGenerateTMHasScatterAndExternal(t *testing.T) {
	top := paperTop()
	p := PaperDefaults(20, 20, 10)
	m := p.GenerateTM(stats.NewRNG(4))
	ps := tm.SummarizePatterns(m, top)
	if ps.ScatterGatherRows == 0 {
		t.Fatal("no scatter-gather structure generated")
	}
	if ps.ExternalFraction <= 0 {
		t.Fatal("no external traffic generated")
	}
	if ps.WithinRackFraction <= 0.05 {
		t.Fatalf("within-rack share %v too small — diagonal missing", ps.WithinRackFraction)
	}
}

func TestGenerateFlowsConserveBytes(t *testing.T) {
	p := PaperDefaults(4, 5, 2)
	rng := stats.NewRNG(5)
	m := p.GenerateTM(rng)
	recs := p.GenerateFlows(rng, m, DefaultFlowShape(), 0, 1)
	var got float64
	for _, r := range recs {
		got += float64(r.Bytes)
		if r.Start < 0 || r.End > p.Window {
			t.Fatalf("flow outside window: %+v", r)
		}
		if r.End <= r.Start {
			t.Fatalf("non-positive duration: %+v", r)
		}
	}
	want := m.Total()
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("flow bytes %v, TM total %v", got, want)
	}
}

func TestGenerateFlowsIDsAndPorts(t *testing.T) {
	p := PaperDefaults(4, 5, 2)
	rng := stats.NewRNG(6)
	m := p.GenerateTM(rng)
	recs := p.GenerateFlows(rng, m, DefaultFlowShape(), 30*time.Second, 100)
	seen := map[int64]bool{}
	for _, r := range recs {
		if seen[int64(r.ID)] {
			t.Fatal("duplicate flow ID")
		}
		seen[int64(r.ID)] = true
		if int64(r.ID) < 100 {
			t.Fatal("IDs should start at firstID")
		}
		if r.Start < 30*time.Second {
			t.Fatal("window offset ignored")
		}
	}
}

func TestFitRoundTrip(t *testing.T) {
	top := paperTop()
	p := PaperDefaults(20, 20, 10)
	rng := stats.NewRNG(7)
	m := p.GenerateTM(rng)
	fit := Fit(m, top, p.Window)
	// The fitted sparsity parameters should be in the neighborhood of the
	// generator's (they interact with scatter events, so bands are wide).
	if fit.PSilentAcrossRack < 0.1 || fit.PSilentAcrossRack > 0.8 {
		t.Fatalf("fitted PSilentAcrossRack = %v", fit.PSilentAcrossRack)
	}
	if fit.WithinBytes.Mu < p.WithinBytes.Mu-2 || fit.WithinBytes.Mu > p.WithinBytes.Mu+2 {
		t.Fatalf("fitted WithinBytes.Mu = %v, generator %v", fit.WithinBytes.Mu, p.WithinBytes.Mu)
	}
	if fit.QuietWithinFrac <= 0 || fit.QuietWithinFrac > 0.5 {
		t.Fatalf("fitted QuietWithinFrac = %v", fit.QuietWithinFrac)
	}
	// A TM generated from the fitted params should preserve the headline
	// sparsity ordering.
	m2 := fit.GenerateTM(stats.NewRNG(8))
	es := tm.ComputeEntryStats(m2, top)
	if es.PZeroAcrossRack <= es.PZeroWithinRack {
		t.Fatal("refitted model lost the sparsity ordering")
	}
}

func TestFitDegenerateMatrix(t *testing.T) {
	top := paperTop()
	empty := tm.NewMatrix(top.NumHosts())
	fit := Fit(empty, top, 10*time.Second)
	// Fallbacks must kick in; generating from the fit must not panic.
	m := fit.GenerateTM(stats.NewRNG(9))
	_ = m.Total()
}

func TestDeterministicGeneration(t *testing.T) {
	p := PaperDefaults(8, 10, 4)
	a := p.GenerateTM(stats.NewRNG(10))
	b := p.GenerateTM(stats.NewRNG(10))
	// Entry-wise identity (Total() sums in map order, so FP rounding can
	// differ even for identical matrices — compare entries instead).
	if a.NonZero() != b.NonZero() || tm.NormalizedChange(a, b) != 0 {
		t.Fatal("generation is not deterministic for equal seeds")
	}
}

func TestExpectedTotalCalibration(t *testing.T) {
	top := paperTop()
	p := PaperDefaults(20, 20, 10)
	rng := stats.NewRNG(20)
	m := p.GenerateTM(rng)
	fit := Fit(m, top, p.Window)
	// After calibration the fitted model's expected volume matches the
	// measured TM's total.
	exp := fit.ExpectedTotal()
	if math.Abs(exp-m.Total())/m.Total() > 0.01 {
		t.Fatalf("calibrated expected total %v vs measured %v", exp, m.Total())
	}
	// And generated windows land in the right ballpark (lognormal tails
	// make single windows noisy; average a few).
	var gen float64
	const trials = 8
	g := stats.NewRNG(21)
	for i := 0; i < trials; i++ {
		gen += fit.GenerateTM(g).Total()
	}
	gen /= trials
	if gen < m.Total()/4 || gen > m.Total()*4 {
		t.Fatalf("generated mean total %v far from measured %v", gen, m.Total())
	}
}

func TestSeriesGenCorrelation(t *testing.T) {
	p := PaperDefaults(8, 10, 4)
	// Correlated series: consecutive windows share active servers and
	// hubs, so the normalized change is lower than independent redraws.
	const windows = 30
	gen := p.NewSeriesGen(stats.NewRNG(40))
	var corr []*tm.Matrix
	for i := 0; i < windows; i++ {
		corr = append(corr, gen.Next())
	}
	indep := make([]*tm.Matrix, windows)
	r := stats.NewRNG(41)
	for i := range indep {
		indep[i] = p.GenerateTM(r)
	}
	med := func(series []*tm.Matrix) float64 {
		return stats.Median(tm.ChangeSeries(series, 1))
	}
	mc, mi := med(corr), med(indep)
	if mc <= 0 {
		t.Fatal("correlated series should still change window to window (Fig 10)")
	}
	if mc >= mi {
		t.Fatalf("correlated change %v should be below independent %v", mc, mi)
	}
}

func TestSeriesGenDeterministicAndAlive(t *testing.T) {
	p := PaperDefaults(8, 10, 4)
	run := func(seed uint64) []float64 {
		gen := p.NewSeriesGen(stats.NewRNG(seed))
		var totals []float64
		for i := 0; i < 10; i++ {
			m := gen.Next()
			if m.NonZero() == 0 {
				t.Fatal("series died out")
			}
			totals = append(totals, float64(m.NonZero()))
		}
		return totals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series not deterministic at window %d: %v vs %v", i, a[i], b[i])
		}
	}
}
