# dctraffic build and experiment targets.

GO ?= go

.PHONY: all build vet lint test test-short smoke-metrics smoke-stream smoke-fused smoke-sweep bench bench-snapshot figures day paper-day clean

all: build vet lint test

build:
	$(GO) build ./...

# vet also fails on formatting drift so CI catches it before review.
vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# The determinism multichecker (cmd/dctlint): mapiter, walltime,
# globalrand, floatsum, plus the dataflow-backed parallel-contract
# analyzers sharedslot, mergeorder, rngshare, over every package.
# Stale //dctlint:ignore directives are findings too. CI runs the same
# binary with -github for inline PR annotations; -json is available for
# tooling. See DESIGN.md, "Determinism".
lint:
	$(GO) run ./cmd/dctlint ./...

# The default verify path: vet, the determinism linter, the full suite,
# the race detector over the two packages that deliver observer
# callbacks (the netsim leg includes the parallel simulate property
# tests, so the per-rack domain engine runs under the race detector),
# and the parallel-analysis race leg (the task slots of the analyze
# pipeline must stay disjoint).
test: vet lint
	$(GO) test ./...
	$(GO) test -race ./internal/netsim ./internal/sched
	$(GO) test -race -run 'TestAnalyzeParallel|TestAnalyzeStream|TestRunAnalyze' ./internal/core
	$(GO) test -race -run 'TestFleet' ./internal/fleet

test-short:
	$(GO) test -short ./...

# End-to-end observability smoke test: a short SmallRun-shaped dcsim
# with -progress and -metrics, then dcmetrics asserts the snapshot
# parses and contains every subsystem's series. CI uploads the snapshot
# as an artifact.
smoke-metrics:
	$(GO) run ./cmd/dcsim -duration 30m -drain 10m -progress \
		-metrics smoke-metrics.json -out /dev/null
	$(GO) run ./cmd/dcmetrics -require netsim.,cosmos.,scope.,trace.,runtime. smoke-metrics.json

# Bounded-memory streaming smoke test: dcsim writes a short trace,
# dcanalyze streams it through the sliding-window pipeline under a
# GOMEMLIMIT soft target, and -max-heap-mb turns the peak live heap
# into a hard assertion (the process exits nonzero on a breach).
smoke-stream:
	$(GO) run ./cmd/dcsim -duration 30m -drain 10m -out smoke-stream.jsonl
	GOMEMLIMIT=64MiB $(GO) run ./cmd/dcanalyze -trace smoke-stream.jsonl \
		-racks 8 -servers 10 -duration 30m -max-heap-mb 64 > /dev/null

# Fused-pipeline smoke test: simulate and analyze overlapped through
# the watermarked live source under a GOMEMLIMIT soft target, then
# dcmetrics asserts the run snapshot carries the seam's series
# (trace.live.* gauges, pipeline.* backpressure counter) alongside the
# usual subsystems.
smoke-fused:
	GOMEMLIMIT=128MiB $(GO) run ./cmd/dcanalyze -fused -racks 8 -servers 10 \
		-duration 30m -metrics smoke-fused.json > /dev/null
	$(GO) run ./cmd/dcmetrics -require netsim.,trace.,trace.live.,pipeline. smoke-fused.json

# Fleet-executor smoke test: a 3-seed 30 m sweep run concurrently under
# a global GOMEMLIMIT (the admission gate derives its budget from it),
# then dcmetrics asserts the merged snapshot carries the fleet scheduler
# series, the cross-run subsystem rollup and the per-run sections.
smoke-sweep:
	GOMEMLIMIT=256MiB $(GO) run ./cmd/dcsweep -racks 8 -servers 10 \
		-duration 30m -drain 10m -seeds 1,2,3 -n 2 -progress \
		-metrics smoke-sweep.json -json smoke-sweep-manifest.json > /dev/null
	$(GO) run ./cmd/dcmetrics -require fleet.,netsim.,trace.,analyze.,run0.,run1.,run2. smoke-sweep.json

# One benchmark per paper table/figure plus ablations, and the
# per-package infrastructure benchmarks (simulator, TM, trace, solver).
bench:
	$(GO) test -bench . -benchmem ./...

# Machine-readable snapshots of the netsim allocator, analysis
# pipeline, and tomography solver benchmarks, tracked in-repo so future
# PRs can see the perf trajectory. The tomo pair is the warm-start
# headline: one cold paper-scale sparsity-max solve vs the steady-state
# warm window.
bench-snapshot:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/netsim | $(GO) run ./cmd/benchjson > BENCH_netsim.json
	$(GO) test -bench 'BenchmarkAnalyze|BenchmarkRunAnalyze' -benchmem -run '^$$' ./internal/core | $(GO) run ./cmd/benchjson > BENCH_analyze.json
	$(GO) test -bench 'BenchmarkSparsityMax' -benchmem -run '^$$' -timeout 30m ./internal/tomo | $(GO) run ./cmd/benchjson > BENCH_tomo.json
	$(GO) test -bench 'BenchmarkFleet' -benchmem -run '^$$' ./internal/fleet | $(GO) run ./cmd/benchjson > BENCH_fleet.json

# Regenerate every figure's data series into ./figures (laptop scale, 2 h).
figures:
	$(GO) run ./cmd/dcanalyze -racks 8 -servers 10 -duration 2h -tsv figures

# The EXPERIMENTS.md reference run: laptop-scale cluster, 24 simulated hours.
day:
	$(GO) run ./cmd/dcanalyze -racks 8 -servers 10 -duration 24h -tsv figures-day

# Paper-scale (1500 servers, 24 h): minutes of wall clock, a few GB of RAM.
paper-day:
	$(GO) run ./cmd/dcanalyze -paper -tsv figures-paper

clean:
	rm -rf figures figures-day figures-paper trace.jsonl smoke-metrics.json smoke-stream.jsonl smoke-fused.json smoke-sweep.json smoke-sweep-manifest.json
