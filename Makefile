# dctraffic build and experiment targets.

GO ?= go

.PHONY: all build vet test test-short bench figures day paper-day clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench . -benchmem .

# Regenerate every figure's data series into ./figures (laptop scale, 2 h).
figures:
	$(GO) run ./cmd/dcanalyze -racks 8 -servers 10 -duration 2h -tsv figures

# The EXPERIMENTS.md reference run: laptop-scale cluster, 24 simulated hours.
day:
	$(GO) run ./cmd/dcanalyze -racks 8 -servers 10 -duration 24h -tsv figures-day

# Paper-scale (1500 servers, 24 h): minutes of wall clock, a few GB of RAM.
paper-day:
	$(GO) run ./cmd/dcanalyze -paper -tsv figures-paper

clean:
	rm -rf figures figures-day figures-paper trace.jsonl
