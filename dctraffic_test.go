package dctraffic

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := SmallRun()
	cfg.Duration = 20 * time.Minute
	cfg.DrainTime = 10 * time.Minute
	rr, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var peak int
	rep, err := AnalyzeRun(context.Background(), rr,
		WithAnalyzeProgress(func(p StreamProgress) { peak = p.PeakBuffered }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fig9.Summary.NumFlows == 0 {
		t.Fatal("no flows analyzed")
	}
	if rep.Text() == "" {
		t.Fatal("empty report text")
	}
	if peak <= 0 {
		t.Fatal("no streaming progress delivered")
	}
	// The deprecated struct-options shim must agree with the
	// functional-options pipeline it wraps.
	if legacy := Analyze(rr, AnalyzeOptions{}); legacy.Fig9.Summary != rep.Fig9.Summary {
		t.Fatalf("deprecated Analyze shim diverged: %+v != %+v",
			legacy.Fig9.Summary, rep.Fig9.Summary)
	}
}

func TestFacadeModel(t *testing.T) {
	p := PaperModelFor(ClusterShape{Racks: 8, ServersPerRack: 10, ExternalHosts: 4})
	if got := PaperModel(8, 10, 4); got.Window != p.Window {
		t.Fatal("deprecated PaperModel disagrees with PaperModelFor")
	}
	rng := NewRNG(1)
	m := p.GenerateTM(rng)
	if m.Total() <= 0 {
		t.Fatal("model generated no traffic")
	}
	recs := p.GenerateFlows(rng, m, DefaultFlowShape(), 0, 1)
	if len(recs) == 0 {
		t.Fatal("no flows from model")
	}
	if HeatASCII(m, 20) == "" {
		t.Fatal("no heat map")
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	records := []FlowRecord{
		{ID: 1, Src: 0, Dst: 1, Bytes: 10, Start: 0, End: time.Second},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil || len(back) != 1 || back[0] != records[0] {
		t.Fatalf("round trip failed: %v %v", back, err)
	}
	m := ServerMatrix(back, 4, 0, time.Second)
	if m.At(0, 1) != 10 {
		t.Fatal("ServerMatrix lost bytes")
	}
}
