module dctraffic

go 1.23
