// Package dctraffic reproduces "The Nature of Datacenter Traffic:
// Measurements & Analysis" (Kandula, Sengupta, Greenberg, Patel, Chaiken —
// IMC 2009) as a runnable system: a cluster simulator whose Cosmos/Scope-
// style workload generates the paper's traffic, the socket-level
// instrumentation methodology of §2, the complete analysis suite of §4
// (traffic matrices, flow statistics, congestion, application impact),
// the tomography study of §5, and the reusable empirical traffic model of
// §4.1.
//
// Quick start:
//
//	rr, err := dctraffic.Simulate(dctraffic.SmallRun())
//	if err != nil { ... }
//	report := dctraffic.Analyze(rr, dctraffic.AnalyzeOptions{})
//	fmt.Println(report.Text())
//
// The Report contains one field per figure in the paper; EXPERIMENTS.md
// records paper-vs-measured values. For standalone synthetic traffic
// generation (no cluster simulation), use PaperModel / FitModel.
package dctraffic

import (
	"io"

	"dctraffic/internal/core"
	"dctraffic/internal/model"
	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// Core pipeline types, re-exported for direct use.
type (
	// RunConfig assembles a simulation (topology, store, workload,
	// instrumentation, duration).
	RunConfig = core.RunConfig
	// RunResult carries the simulated cluster and its collected logs.
	RunResult = core.RunResult
	// AnalyzeOptions tunes the per-figure analyses.
	AnalyzeOptions = core.AnalyzeOptions
	// Report holds regenerated data for every figure of the paper.
	Report = core.Report

	// FlowRecord is the socket-level log's view of one flow.
	FlowRecord = trace.FlowRecord
	// Matrix is a sparse traffic matrix.
	Matrix = tm.Matrix
	// ModelParams is the §4.1 empirical traffic model.
	ModelParams = model.Params
	// TMSeriesGen generates correlated sequences of window TMs.
	TMSeriesGen = model.SeriesGen
	// FlowShape controls TM-to-flow decomposition in the model.
	FlowShape = model.FlowShape
	// TopologyConfig parameterizes the cluster fabric.
	TopologyConfig = topology.Config
	// Time is simulation time (an offset from run start).
	Time = netsim.Time
	// RNG is a deterministic random stream.
	RNG = stats.RNG
)

// SmallRun returns the laptop-scale run configuration (80 servers, 2 h).
func SmallRun() RunConfig { return core.SmallRun() }

// PaperRun returns the paper-scale configuration (1500 servers, 24 h).
// Expect minutes of wall-clock time and a few GB of memory.
func PaperRun() RunConfig { return core.PaperRun() }

// Simulate builds the cluster and runs the workload under socket-level
// instrumentation.
func Simulate(cfg RunConfig) (*RunResult, error) { return core.Simulate(cfg) }

// Analyze regenerates every figure of the paper from a run.
func Analyze(rr *RunResult, opts AnalyzeOptions) *Report { return core.Analyze(rr, opts) }

// HeatASCII renders a TM as an ASCII heat map of loge(Bytes) — a terminal
// rendition of Figure 2.
func HeatASCII(m *Matrix, width int) string { return core.HeatASCII(m, width) }

// PaperModel returns the §4.1 generative traffic model with parameters
// tuned to the paper's reported statistics at the given cluster shape.
func PaperModel(racks, serversPerRack, externalHosts int) ModelParams {
	return model.PaperDefaults(racks, serversPerRack, externalHosts)
}

// FitModel estimates model parameters from a measured server-level TM.
func FitModel(m *Matrix, topo *topology.Topology, window Time) ModelParams {
	return model.Fit(m, topo, window)
}

// DefaultFlowShape returns §4.3-flavored flow decomposition defaults.
func DefaultFlowShape() FlowShape { return model.DefaultFlowShape() }

// NewRNG returns a deterministic random stream for the model generators.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// WriteTrace streams flow records as JSON lines (the cmd/dcsim format).
func WriteTrace(w io.Writer, records []FlowRecord) error {
	return trace.WriteJSONL(w, records)
}

// ReadTrace parses a JSONL flow-record stream.
func ReadTrace(r io.Reader) ([]FlowRecord, error) { return trace.ReadJSONL(r) }

// ServerMatrix aggregates flow records into one host-level TM over
// [from, to).
func ServerMatrix(records []FlowRecord, numHosts int, from, to Time) *Matrix {
	return tm.ServerMatrix(records, numHosts, from, to)
}
