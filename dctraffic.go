// Package dctraffic reproduces "The Nature of Datacenter Traffic:
// Measurements & Analysis" (Kandula, Sengupta, Greenberg, Patel, Chaiken —
// IMC 2009) as a runnable system: a cluster simulator whose Cosmos/Scope-
// style workload generates the paper's traffic, the socket-level
// instrumentation methodology of §2, the complete analysis suite of §4
// (traffic matrices, flow statistics, congestion, application impact),
// the tomography study of §5, and the reusable empirical traffic model of
// §4.1.
//
// Quick start:
//
//	rr, err := dctraffic.Run(ctx, dctraffic.SmallRun(),
//		dctraffic.WithProgress(func(p dctraffic.Progress) { ... }))
//	if err != nil { ... }
//	report, err := dctraffic.AnalyzeRun(ctx, rr)
//	if err != nil { ... }
//	fmt.Println(report.Text())
//
// Run is context-aware (cancellation is honored at event-loop batch
// boundaries) and observable: RunResult.Metrics carries the final
// snapshot of every netsim/cosmos/scope/trace series plus wall-clock
// phase timings, and WithProgress / WithMetricsSink / WithObserver tune
// what is reported where. Simulate is the options-free shorthand.
//
// Analysis takes the same functional-option shape: AnalyzeRun for a
// completed run, AnalyzeSource for a trace file streamed in bounded
// memory (see OpenTraceFile), with WithAnalyzeParallelism,
// WithInactivityTimeout and friends tuning the figures.
//
// RunAnalyze fuses the two phases: the simulator feeds the analyzer
// live through a watermarked reorder buffer, so record-derived figure
// work overlaps the simulation and the trace is never re-sorted into a
// second copy — same report, bit for bit:
//
//	rr, report, err := dctraffic.RunAnalyze(ctx, dctraffic.SmallRun())
//	if err != nil { ... }
//	fmt.Println(report.Text())
//
// The Report contains one field per figure in the paper; EXPERIMENTS.md
// records paper-vs-measured values. For standalone synthetic traffic
// generation (no cluster simulation), use PaperModelFor / FitModel.
package dctraffic

import (
	"context"
	"io"

	"dctraffic/internal/core"
	"dctraffic/internal/model"
	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// Core pipeline types, re-exported for direct use.
type (
	// RunConfig assembles a simulation (topology, store, workload,
	// instrumentation, duration).
	RunConfig = core.RunConfig
	// RunResult carries the simulated cluster and its collected logs.
	RunResult = core.RunResult
	// AnalyzeOptions tunes the per-figure analyses.
	//
	// Deprecated: pass AnalyzeOption values to AnalyzeRun/AnalyzeSource
	// instead.
	AnalyzeOptions = core.AnalyzeOptions
	// AnalyzeOption configures AnalyzeRun/AnalyzeSource (see the WithX
	// analysis options below).
	AnalyzeOption = core.AnalyzeOption
	// StreamProgress reports the streaming analysis sweep's position and
	// buffered-record high-water mark (see WithAnalyzeProgress).
	StreamProgress = core.StreamProgress
	// TraceSource is a canonical-order stream of flow records —
	// AnalyzeSource's input. RunResult.Source and OpenTraceFile return
	// implementations.
	TraceSource = trace.Source
	// Report holds regenerated data for every figure of the paper.
	Report = core.Report

	// RunOption configures Run (see WithProgress, WithMetricsSink,
	// WithObserver, WithProgressInterval).
	RunOption = core.RunOption
	// Progress is one run-loop progress report.
	Progress = core.Progress
	// Registry is the observability layer's metrics registry.
	Registry = obs.Registry
	// MetricsSnapshot is the exported state of a Registry.
	MetricsSnapshot = obs.Snapshot

	// FlowRecord is the socket-level log's view of one flow.
	FlowRecord = trace.FlowRecord
	// TraceWriter streams flow records to a writer one JSON line at a
	// time.
	TraceWriter = trace.Writer
	// TraceReader streams flow records from a JSONL trace.
	TraceReader = trace.Reader
	// Matrix is a sparse traffic matrix.
	Matrix = tm.Matrix
	// ModelParams is the §4.1 empirical traffic model.
	ModelParams = model.Params
	// TMSeriesGen generates correlated sequences of window TMs.
	TMSeriesGen = model.SeriesGen
	// FlowShape controls TM-to-flow decomposition in the model.
	FlowShape = model.FlowShape
	// TopologyConfig parameterizes the cluster fabric.
	TopologyConfig = topology.Config
	// ClusterShape names the dimensions of a simulated cluster.
	ClusterShape = model.ClusterShape
	// Time is simulation time (an offset from run start).
	Time = netsim.Time
	// RNG is a deterministic random stream.
	RNG = stats.RNG
)

// SmallRun returns the laptop-scale run configuration (80 servers, 2 h).
func SmallRun() RunConfig { return core.SmallRun() }

// PaperRun returns the paper-scale configuration (1500 servers, 24 h).
// Expect wall-clock seconds to minutes depending on the machine and
// roughly 1.5 GB of memory (measured: 1.24 GB peak heap, 1.56 GB from
// the OS — see EXPERIMENTS.md "Runtime").
func PaperRun() RunConfig { return core.PaperRun() }

// Run builds the cluster and runs the workload under socket-level
// instrumentation. It honors ctx cancellation at event-loop batch
// boundaries and collects an observability snapshot into
// RunResult.Metrics; see WithProgress, WithMetricsSink and WithObserver.
// Attaching or detaching observability never changes simulation
// results: same seed, same trace, bit for bit.
func Run(ctx context.Context, cfg RunConfig, opts ...RunOption) (*RunResult, error) {
	return core.Run(ctx, cfg, opts...)
}

// Simulate builds the cluster and runs the workload under socket-level
// instrumentation. It is shorthand for Run with a background context and
// default options.
func Simulate(cfg RunConfig) (*RunResult, error) { return core.Simulate(cfg) }

// WithProgress delivers a Progress report at every simulated-time batch
// boundary (default every simulated minute).
func WithProgress(fn func(Progress)) RunOption { return core.WithProgress(fn) }

// WithProgressInterval sets the simulated-time batch length used for
// progress reports, runtime samples and cancellation checks. It never
// affects simulation results.
func WithProgressInterval(d Time) RunOption { return core.WithProgressInterval(d) }

// WithMetricsSink writes the final metrics snapshot as JSON to w when
// the run completes.
func WithMetricsSink(w io.Writer) RunOption { return core.WithMetricsSink(w) }

// WithObserver uses the caller's registry for the run's metrics; nil
// disables metrics collection entirely.
func WithObserver(reg *Registry) RunOption { return core.WithObserver(reg) }

// NewRegistry returns an empty metrics registry for WithObserver.
func NewRegistry() *Registry { return obs.NewRegistry() }

// ReadMetrics parses a JSON metrics snapshot (the WithMetricsSink /
// `dcsim -metrics` format).
func ReadMetrics(r io.Reader) (*MetricsSnapshot, error) { return obs.ReadSnapshot(r) }

// AnalyzeRun regenerates every figure of the paper from a run. The
// pipeline streams the run's records through the same bounded-memory
// sweep AnalyzeSource uses and runs figure computations concurrently
// (see WithAnalyzeParallelism); results are bit-identical at any
// parallelism.
func AnalyzeRun(ctx context.Context, rr *RunResult, opts ...AnalyzeOption) (*Report, error) {
	return core.AnalyzeRun(ctx, rr, opts...)
}

// AnalyzeSource regenerates the record-derived figures from a flow
// stream in bounded memory — the entry point for analyzing written-out
// traces too big to materialize. Requires WithAnalyzeTopology and
// WithAnalyzeDuration (AnalyzeRun fills both from the run).
func AnalyzeSource(ctx context.Context, src TraceSource, opts ...AnalyzeOption) (*Report, error) {
	return core.AnalyzeSource(ctx, src, opts...)
}

// RunAnalyze runs the simulation and the analysis as one fused
// pipeline: the simulator's completed flows stream through a
// watermarked reorder buffer straight into the analysis sweep, so the
// record-derived figures compute while the cluster still runs. The
// report is bit-identical to Run followed by AnalyzeRun at every
// worker-count combination. Cancellation of ctx, a simulation error,
// or an analysis error unwinds both phases before RunAnalyze returns.
func RunAnalyze(ctx context.Context, cfg RunConfig, opts ...AnalyzeOption) (*RunResult, *Report, error) {
	return core.RunAnalyze(ctx, cfg, opts...)
}

// WithRunOptions forwards run options (WithProgress, WithObserver,
// WithMetricsSink, ...) to the simulation phase of RunAnalyze.
func WithRunOptions(opts ...RunOption) AnalyzeOption { return core.WithRunOptions(opts...) }

// WithLiveBuffer bounds RunAnalyze's released-record FIFO (records the
// watermark has freed but the analyzer has not yet consumed); the
// simulator blocks once the FIFO fills. 0 means the default. The bound
// never changes results, only the backpressure point.
func WithLiveBuffer(n int) AnalyzeOption { return core.WithLiveBuffer(n) }

// OpenTraceFile opens a JSONL (optionally gzip-compressed) flow trace as
// a TraceSource for AnalyzeSource, sorting out-of-order records through
// bounded-memory spill files rather than loading the trace. Close it
// when done.
func OpenTraceFile(path string) (*trace.FileSource, error) {
	return trace.OpenFile(path, trace.FileOptions{})
}

// WithAnalyzeTopology supplies the cluster topology for run-less
// (trace file) analysis.
func WithAnalyzeTopology(top *topology.Topology) AnalyzeOption { return core.WithTopology(top) }

// WithAnalyzeDuration supplies the trace horizon for run-less analysis.
func WithAnalyzeDuration(d Time) AnalyzeOption { return core.WithDuration(d) }

// WithAnalyzeParallelism bounds the analysis worker goroutines
// (0 = GOMAXPROCS). Any value yields bit-identical results.
func WithAnalyzeParallelism(n int) AnalyzeOption { return core.WithParallelism(n) }

// WithAnalyzeSequential forces the single-goroutine reference path.
func WithAnalyzeSequential() AnalyzeOption { return core.WithSequential() }

// WithAnalyzeObserver attaches a metrics registry to the analysis
// pipeline.
func WithAnalyzeObserver(reg *Registry) AnalyzeOption { return core.WithAnalysisObserver(reg) }

// WithInactivityTimeout applies the §3 flow-boundary methodology before
// the flow-level analyses.
func WithInactivityTimeout(d Time) AnalyzeOption { return core.WithInactivityTimeout(d) }

// WithCDFSampleCap bounds each whole-run CDF's exact sample count
// before it degrades to a bounded-error quantile sketch; negative keeps
// every CDF exact.
func WithCDFSampleCap(n int) AnalyzeOption { return core.WithCDFSampleCap(n) }

// WithAnalyzeProgress delivers a StreamProgress report at every window
// boundary of the streaming sweep.
func WithAnalyzeProgress(fn func(StreamProgress)) AnalyzeOption {
	return core.WithStreamProgress(fn)
}

// NewTopology builds the cluster fabric for WithAnalyzeTopology.
func NewTopology(cfg TopologyConfig) (*topology.Topology, error) { return topology.New(cfg) }

// Analyze regenerates every figure of the paper from a run.
//
// Deprecated: use AnalyzeRun with functional options; this shim routes
// through the same streaming pipeline and is bit-identical.
func Analyze(rr *RunResult, opts AnalyzeOptions) *Report { return core.Analyze(rr, opts) }

// AnalyzeContext is Analyze with cancellation.
//
// Deprecated: use AnalyzeRun, which takes the same knobs as functional
// options.
func AnalyzeContext(ctx context.Context, rr *RunResult, opts AnalyzeOptions) (*Report, error) {
	return core.AnalyzeContext(ctx, rr, opts)
}

// HeatASCII renders a TM as an ASCII heat map of loge(Bytes) — a terminal
// rendition of Figure 2.
func HeatASCII(m *Matrix, width int) string { return core.HeatASCII(m, width) }

// PaperModelFor returns the §4.1 generative traffic model with
// parameters tuned to the paper's reported statistics at the given
// cluster shape.
func PaperModelFor(shape ClusterShape) ModelParams {
	return model.PaperDefaultsFor(shape)
}

// PaperModel returns the §4.1 generative traffic model at the given
// cluster shape.
//
// Deprecated: the positional ints are easy to transpose; use
// PaperModelFor with a ClusterShape instead.
func PaperModel(racks, serversPerRack, externalHosts int) ModelParams {
	return model.PaperDefaultsFor(model.ClusterShape{
		Racks: racks, ServersPerRack: serversPerRack, ExternalHosts: externalHosts,
	})
}

// FitModel estimates model parameters from a measured server-level TM.
func FitModel(m *Matrix, topo *topology.Topology, window Time) ModelParams {
	return model.Fit(m, topo, window)
}

// DefaultFlowShape returns §4.3-flavored flow decomposition defaults.
func DefaultFlowShape() FlowShape { return model.DefaultFlowShape() }

// NewRNG returns a deterministic random stream for the model generators.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// WriteTrace streams flow records as JSON lines (the cmd/dcsim format).
func WriteTrace(w io.Writer, records []FlowRecord) error {
	return trace.WriteJSONL(w, records)
}

// ReadTrace parses a JSONL flow-record stream.
func ReadTrace(r io.Reader) ([]FlowRecord, error) { return trace.ReadJSONL(r) }

// NewTraceWriter returns a streaming trace writer: one JSON line per
// Write, no full-trace buffering. Call Flush when done.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// NewTraceReader returns a streaming trace reader; Read returns io.EOF
// at end of stream.
func NewTraceReader(r io.Reader) *TraceReader { return trace.NewReader(r) }

// ServerMatrix aggregates flow records into one host-level TM over
// [from, to).
func ServerMatrix(records []FlowRecord, numHosts int, from, to Time) *Matrix {
	return tm.ServerMatrix(records, numHosts, from, to)
}
