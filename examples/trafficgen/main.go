// Traffic-model round trip (§4.1): the paper proposes that Figures 2–4
// "comprise a model that can be used in simulating such traffic". This
// example demonstrates the full loop a network designer would use:
//
//  1. measure — simulate the cluster and capture a server-level TM;
//  2. fit — estimate the empirical model's parameters from that TM;
//  3. generate — draw synthetic TMs from the fitted model (no cluster
//     simulation needed; microseconds per TM);
//  4. validate — check the synthetic TMs preserve the measured structure.
package main

import (
	"fmt"
	"log"
	"time"

	"dctraffic"
	"dctraffic/internal/tm"
)

func main() {
	// 1. Measure.
	cfg := dctraffic.SmallRun()
	cfg.Duration = time.Hour
	fmt.Println("step 1: measuring (1h cluster simulation)...")
	rr, err := dctraffic.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	window := dctraffic.Time(100 * time.Second)
	mid := cfg.Duration / 2
	measured := dctraffic.ServerMatrix(rr.Records(), rr.Top.NumHosts(), mid, mid+window)
	show := func(name string, m *dctraffic.Matrix) {
		es := tm.ComputeEntryStats(m, rr.Top)
		cs := tm.ComputeCorrespondents(m, rr.Top)
		ps := tm.SummarizePatterns(m, rr.Top)
		fmt.Printf("  %-10s total=%6.2f GB  P(zero|rack)=%.3f  P(zero|cross)=%.4f  corr=%.0f/%.0f  rackShare=%.2f\n",
			name, m.Total()/1e9, es.PZeroWithinRack, es.PZeroAcrossRack,
			cs.MedianWithinCount, cs.MedianAcrossCount, ps.WithinRackFraction)
	}
	fmt.Println("\nmeasured window statistics:")
	show("measured", measured)

	// 2. Fit.
	fmt.Println("\nstep 2: fitting the §4.1 model to the measured TM...")
	params := dctraffic.FitModel(measured, rr.Top, window)
	fmt.Printf("  fitted: P(chatty)=%.2f quietFrac=%.3f P(silent-across)=%.2f within μ=%.1f σ=%.1f\n",
		params.PChattyWithinRack, params.QuietWithinFrac, params.PSilentAcrossRack,
		params.WithinBytes.Mu, params.WithinBytes.Sigma)

	// 3. Generate.
	fmt.Println("\nstep 3: generating 3 synthetic windows from the fitted model...")
	rng := dctraffic.NewRNG(7)
	for i := 0; i < 3; i++ {
		synth := params.GenerateTM(rng)
		show(fmt.Sprintf("synthetic%d", i), synth)
	}

	// 4. Decompose one synthetic TM into flows for a packet/flow-level
	// simulator.
	synth := params.GenerateTM(rng)
	recs := params.GenerateFlows(rng, synth, dctraffic.DefaultFlowShape(), 0, 1)
	fmt.Printf("\nstep 4: decomposed a synthetic TM into %d flow records\n", len(recs))
	fmt.Println("\nsynthetic heat map:")
	fmt.Print(dctraffic.HeatASCII(synth, 60))
}
