// What-if study: record a trace on the paper's tree fabric, then replay
// the exact same offered load on candidate fabrics — double ToR uplinks,
// and a VL2-style multipath fabric — comparing flow slowdowns and
// congestion. This is the workflow the paper's measurements enable:
// "network designers can evaluate architecture choices better by knowing
// what drives the traffic."
package main

import (
	"fmt"
	"log"
	"time"

	"dctraffic"
	"dctraffic/internal/congestion"
	"dctraffic/internal/netsim"
	"dctraffic/internal/replay"
	"dctraffic/internal/topology"
)

func main() {
	// 1. Record: simulate the production tree for an hour.
	cfg := dctraffic.SmallRun()
	cfg.Duration = time.Hour
	cfg.DrainTime = 20 * time.Minute
	fmt.Println("recording 1h of workload on the tree fabric...")
	rr, err := dctraffic.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	records := rr.Records()
	baseEps := congestion.Detect(rr.Net.Stats(), rr.Top, 0, rr.Top.InterSwitchLinks())
	fmt.Printf("baseline: %d flows, %d congestion episodes\n\n", len(records), len(baseEps))

	type candidate struct {
		name   string
		mutate func(*topology.Config)
	}
	candidates := []candidate{
		{"tree (baseline, re-run)", func(*topology.Config) {}},
		{"tree, 2x ToR uplinks", func(c *topology.Config) { c.TorUplinkBps *= 2 }},
		{"multipath, 4 aggs", func(c *topology.Config) { c.MultiPath = true; c.AggSwitches = 4 }},
		{"multipath, 4 aggs, 2x uplinks", func(c *topology.Config) {
			c.MultiPath = true
			c.AggSwitches = 4
			c.TorUplinkBps *= 2
		}},
	}
	fmt.Printf("%-32s %10s %10s %12s %14s\n", "fabric", "med slow", "mean slow", "episodes", "long (>=10s)")
	for _, cand := range candidates {
		tc := cfg.Topology
		cand.mutate(&tc)
		top, err := topology.New(tc)
		if err != nil {
			log.Fatal(err)
		}
		res, err := replay.Run(records, top, replay.Options{
			Net: netsim.Options{StatsBinSize: time.Second},
		})
		if err != nil {
			log.Fatal(err)
		}
		eps := congestion.Detect(res.Net.Stats(), top, 0, top.InterSwitchLinks())
		long := 0
		for _, e := range eps {
			if e.Duration() >= 10*time.Second {
				long++
			}
		}
		fmt.Printf("%-32s %10.3f %10.3f %12d %14d\n",
			cand.name,
			replay.MedianSlowdown(records, res.Records),
			replay.MeanSlowdown(records, res.Records),
			len(eps), long)
	}
	fmt.Println("\nslowdown < 1 means the fabric moved the same flows faster;")
	fmt.Println("replay is open-loop, so arrival times are held fixed.")
	fmt.Println()
	fmt.Println("Note the multipath rows: open-loop replay punishes ECMP because the")
	fmt.Println("per-agg links are 4x smaller and the recorded arrivals were shaped by")
	fmt.Println("the tree's backpressure. The closed-loop simulation (see")
	fmt.Println("BenchmarkAblationMultipathFabric), where the workload adapts, shows")
	fmt.Println("multipath removing sustained hot-trunk congestion instead. Open- vs")
	fmt.Println("closed-loop evaluation disagreeing is itself the classic trace-replay")
	fmt.Println("caveat.")
}
