// Tomography study (Figures 12–14): can SNMP-style link counters replace
// socket-level instrumentation in a datacenter? This example walks one TM
// through the whole §5 methodology — ground truth → link counts →
// estimates → errors — then aggregates over a run, showing why the
// gravity prior (built for ISP traffic) struggles with sparse,
// job-clustered datacenter TMs.
package main

import (
	"fmt"
	"log"
	"time"

	"dctraffic"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/tomo"
)

func main() {
	cfg := dctraffic.SmallRun()
	cfg.Duration = 2 * time.Hour
	fmt.Printf("simulating %v...\n", cfg.Duration)
	rr, err := dctraffic.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	problem := tomo.NewProblem(rr.Top)
	fmt.Printf("\nThe inference problem: %d unknowns (ToR pairs), %d link counters.\n",
		problem.NumPairs(), problem.NumConstraints())
	fmt.Println("Tree topologies give tomography its worst case: few constraints, many unknowns.")

	// Walk one 10-minute TM in detail.
	bin := 10 * time.Minute
	series := tm.TorSeries(rr.Records(), rr.Top, bin, cfg.Duration)
	var truth *tm.Matrix
	idx := 0
	for i, m := range series {
		if m.Total() > 0 {
			truth, idx = m, i
			break
		}
	}
	if truth == nil {
		log.Fatal("no traffic in any window")
	}
	xTrue := problem.VecFromTM(truth)
	b := problem.LinkCounts(truth)
	fmt.Printf("\n== one 10-minute TM (window %d) ==\n", idx)
	nzTrue := tomo.NonZeroCount(xTrue)
	fmt.Printf("ground truth: %.2f GB over %d of %d pairs (sparse!)\n",
		truth.Total()/1e9, nzTrue, problem.NumPairs())

	tg, err := problem.Tomogravity(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tomogravity:   RMSRE %.2f, %d non-zero entries (dense: gravity spreads traffic)\n",
		tomo.RMSRE(xTrue, tg, 0.75), tomo.NonZeroCount(tg))

	from := dctraffic.Time(idx) * dctraffic.Time(bin)
	mult := tomo.JobMultiplier(rr.Log, rr.Top, from, from+dctraffic.Time(bin), 4)
	tj, err := problem.TomogravityWithMultiplier(b, mult)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("+ job prior:   RMSRE %.2f (marginally different: roles shift within a job)\n",
		tomo.RMSRE(xTrue, tj, 0.75))

	sm, err := problem.SparsityMax(b)
	if err != nil {
		log.Fatal(err)
	}
	hits := tomo.HeavyHitterOverlap(xTrue, sm, 97)
	fmt.Printf("sparsity-max:  RMSRE %.2f, %d non-zeros, only %d on true heavy hitters\n",
		tomo.RMSRE(xTrue, sm, 0.75), tomo.NonZeroCount(sm), hits)

	// Aggregate over the run.
	var eTG, eSM []float64
	for _, m := range series {
		if m.Total() <= 0 {
			continue
		}
		bb := problem.LinkCounts(m)
		xt := problem.VecFromTM(m)
		if est, err := problem.Tomogravity(bb); err == nil {
			eTG = append(eTG, tomo.RMSRE(xt, est, 0.75))
		}
		if est, err := problem.SparsityMax(bb); err == nil {
			eSM = append(eSM, tomo.RMSRE(xt, est, 0.75))
		}
	}
	fmt.Printf("\n== aggregate over %d TMs ==\n", len(eTG))
	fmt.Printf("tomogravity median RMSRE:  %.2f (paper: 0.60 over a day of 10-min TMs)\n", stats.Median(eTG))
	fmt.Printf("sparsity-max median RMSRE: %.2f (paper: worse than tomogravity)\n", stats.Median(eSM))
	fmt.Println("\nConclusion (§5): familiar ISP tomography transfers poorly to datacenters;")
	fmt.Println("detailed server-side instrumentation earns its keep.")
}
