// Congestion study (Figures 5–8): run a longer simulated window, find the
// high-utilization episodes on inter-switch links, characterize their
// durations, check whether congested flows slow down, and measure how
// much more likely a job is to fail reading input when its flows cross a
// hot link. Also demonstrates the paper's note that raising the threshold
// C from 0.7 to 0.9 yields qualitatively similar results.
package main

import (
	"fmt"
	"log"
	"time"

	"dctraffic"
	"dctraffic/internal/congestion"
)

func main() {
	cfg := dctraffic.SmallRun()
	cfg.Duration = 3 * time.Hour
	cfg.DrainTime = 30 * time.Minute
	fmt.Printf("simulating %v of cluster time...\n", cfg.Duration)
	rr, err := dctraffic.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	links := rr.Top.InterSwitchLinks()
	for _, c := range []float64{0.7, 0.9} {
		eps := congestion.Detect(rr.Net.Stats(), rr.Top, c, links)
		cdf, over10, longest := congestion.DurationStats(eps)
		fmt.Printf("\n== threshold C = %.1f ==\n", c)
		fmt.Printf("episodes: %d   longest: %.0fs   P(dur<=10s): %.2f\n",
			cdf.N(), longest, cdf.P(10))
		fmt.Printf("links with >=10s episode:  %.2f (paper: 0.86)\n",
			congestion.FracLinksWithEpisodeAtLeast(eps, links, 10*time.Second))
		fmt.Printf("links with >=100s episode: %.2f (paper: 0.15)\n",
			congestion.FracLinksWithEpisodeAtLeast(eps, links, 100*time.Second))
		_ = over10
	}

	// Figures 7–8 at the default threshold.
	eps := congestion.Detect(rr.Net.Stats(), rr.Top, 0, links)
	overlap, all := congestion.OverlapRateCDFs(rr.Records(), eps, rr.Top)
	fmt.Printf("\n== Fig 7: flow rates ==\n")
	fmt.Printf("flows overlapping congestion: %d of %d\n", overlap.N(), all.N())
	for _, q := range []float64{0.1, 0.5, 0.9} {
		fmt.Printf("  q%.0f: overlap %.3f Mbps | all %.3f Mbps\n",
			q*100, overlap.Quantile(q), all.Quantile(q))
	}
	fmt.Println("(the paper: the two distributions nearly coincide — rates alone hide the damage)")

	period := cfg.Duration / 8
	impacts := congestion.ReadFailureImpact(rr.Log, rr.Records(), eps, rr.Top, period, 8)
	fmt.Printf("\n== Fig 8: read-failure impact per %v period ==\n", period)
	for _, d := range impacts {
		fmt.Printf("  period %d: P(fail|congested)=%.4f  P(fail|clear)=%.4f  increase %+.0f%%\n",
			d.Day, d.PFailCongested, d.PFailClear, d.IncreasePct)
	}

	audit := congestion.AuditIncast(rr.Records(), rr.Top, eps,
		rr.Net.Stats().BinSize(), cfg.Duration, rr.Cluster.Config().MaxConnsPerVertex)
	fmt.Printf("\n== §4.4 incast preconditions ==\n")
	fmt.Printf("  connection cap per vertex:  %d\n", audit.MaxSimultaneousConnections)
	fmt.Printf("  flows within rack:          %.2f\n", audit.FracFlowsWithinRack)
	fmt.Printf("  flows within VLAN:          %.2f\n", audit.FracFlowsWithinVLAN)
	fmt.Println("small fan-in + local flows + multiplexed jobs = incast preconditions rarely co-occur")
}
