// Traffic-engineering study (§4.3 implications): the paper argues that
// per-flow centralized scheduling is infeasible at datacenter flow
// arrival rates, and that scheduling application units or making simple
// random choices is the practical alternative. This example measures the
// trade-off: it simulates the cluster, replays the cross-rack flows over
// a VL2-style multipath fabric, and compares path selectors on load
// balance and required decision throughput — including a centralized
// scheduler handicapped by realistic decision latency.
package main

import (
	"fmt"
	"log"
	"time"

	"dctraffic"
	"dctraffic/internal/te"
)

func main() {
	cfg := dctraffic.SmallRun()
	cfg.Duration = time.Hour
	fmt.Printf("simulating %v of cluster workload...\n", cfg.Duration)
	rr, err := dctraffic.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	flows := te.FlowsFromRecords(rr.Records(), rr.Top)
	fmt.Printf("replaying %d cross-rack flows over a multipath fabric\n\n", len(flows))

	fabric, err := te.NewFabric(rr.Top.NumRacks(), 4, 10e9)
	if err != nil {
		log.Fatal(err)
	}
	results := te.Compare(fabric, flows, 1, time.Second, cfg.Duration,
		10*time.Millisecond, 100*time.Millisecond, time.Second)

	fmt.Printf("%-22s %12s %12s %12s %14s\n",
		"selector", "max util", "p99 util", "imbalance", "decisions/s")
	for _, r := range results {
		fmt.Printf("%-22s %12.3f %12.3f %12.2f %14.1f\n",
			r.Selector, r.MaxUtilization, r.P99Utilization, r.Imbalance, r.DecisionsPerSec)
	}

	fmt.Println("\nReading the table:")
	fmt.Println(" - 'random' needs zero coordination and stays close to the omniscient")
	fmt.Println("   'least-loaded' — the paper's \"simple random choices\" argument;")
	fmt.Println(" - 'per-job' gets similar balance with orders of magnitude fewer")
	fmt.Println("   decisions — \"scheduling application units rather than flows\";")
	fmt.Println(" - 'least-loaded+latency' shows the centralized scheduler degrading as")
	fmt.Println("   decision lag grows toward typical flow lifetimes.")
	fmt.Printf("\nAt the paper's scale the cluster sees ~10⁵ flows/s — this replay's\n")
	fmt.Printf("per-flow selectors would need %0.f decisions/s scaled ×19.\n",
		results[0].DecisionsPerSec)
}
