// Quickstart: simulate a small cluster for half an hour with live
// progress, analyze the collected socket-level logs, and print the
// paper's headline statistics plus a terminal rendition of Figure 2's
// traffic-matrix heat map.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dctraffic"
)

func main() {
	cfg := dctraffic.SmallRun()
	cfg.Duration = 30 * time.Minute
	cfg.DrainTime = 10 * time.Minute

	fmt.Printf("simulating %d servers for %v...\n",
		cfg.Topology.Racks*cfg.Topology.ServersPerRack, cfg.Duration)
	rr, err := dctraffic.Run(context.Background(), cfg,
		dctraffic.WithProgressInterval(10*time.Minute),
		dctraffic.WithProgress(func(p dctraffic.Progress) {
			fmt.Printf("  %3.0f%%  sim %v  %d flows done\n",
				100*p.Frac(), p.SimTime, p.FlowsCompleted)
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d jobs, %d flows, %.1f GB moved\n",
		len(rr.Cluster.Jobs()), len(rr.Records()), rr.Net.TotalBytes()/1e9)
	for _, ph := range rr.Metrics.Phases {
		fmt.Printf("  phase %-8s %6.2fs wall\n", ph.Name, ph.Seconds)
	}
	fmt.Println()

	rep, err := dctraffic.AnalyzeRun(context.Background(), rr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Text())

	fmt.Println("\nFigure 2 heat map (rows = senders, cols = receivers, loge bytes):")
	fmt.Print(dctraffic.HeatASCII(rep.Fig2.TM, 60))
	fmt.Println("\nThe blocks on the diagonal are racks (work-seeks-bandwidth);")
	fmt.Println("full rows/columns are scatter-gather servers.")
}
